//! Structural pass over a token stream: recovers the minimal shape the
//! lints need — `#[cfg(test)]` / `#[test]` regions, function spans with
//! their attributes and return types, `#[must_use]` type declarations,
//! and `// bs-lint: allow(...)` directives.

use crate::tokens::{TokKind, Token};

/// A function item found in the file.
#[derive(Clone, Debug)]
pub struct FnSpan {
    pub name: String,
    /// Declared with a leading `pub` (any visibility restriction such
    /// as `pub(crate)` counts — the lint cares about dropped results,
    /// not module privacy).
    pub is_pub: bool,
    /// Carries `#[must_use]` directly.
    pub has_must_use: bool,
    /// Identifiers appearing in the return type (empty for `()`).
    pub ret_idents: Vec<String>,
    /// Token-index range of the body, inclusive of both braces.
    pub body: Option<(usize, usize)>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Features named by `#[target_feature(enable = "...")]` attributes
    /// on this fn (the string values, unquoted; empty when unattributed).
    pub target_features: Vec<String>,
}

/// A parsed `bs-lint` allow directive.
#[derive(Clone, Debug)]
pub struct Allow {
    pub lint: String,
    /// Lines the directive covers (`None` = whole file).
    pub lines: Option<Vec<u32>>,
    /// The `-- ...` justification text, dashes stripped.
    pub justification: String,
    /// 1-based line of the directive itself.
    pub line: u32,
}

/// Everything the structural pass recovered from one file.
#[derive(Debug, Default)]
pub struct FileScan {
    pub toks: Vec<Token>,
    /// Token-index ranges (inclusive) that are test code.
    pub test_regions: Vec<(usize, usize)>,
    pub fns: Vec<FnSpan>,
    pub allows: Vec<Allow>,
    /// Type names declared with `#[must_use]` in this file.
    pub must_use_types: Vec<String>,
    /// `(line, message)` for malformed `bs-lint:` directives.
    pub malformed_directives: Vec<(u32, String)>,
}

impl FileScan {
    /// Is token `idx` inside test code?
    pub fn in_test(&self, idx: usize) -> bool {
        self.test_regions.iter().any(|&(a, b)| idx >= a && idx <= b)
    }

    /// Names of the functions whose bodies contain token `idx`
    /// (outermost first).
    pub fn enclosing_fns(&self, idx: usize) -> Vec<&str> {
        self.fns
            .iter()
            .filter(|f| matches!(f.body, Some((a, b)) if idx >= a && idx <= b))
            .map(|f| f.name.as_str())
            .collect()
    }

    /// Is `(lint, line)` suppressed by an allow directive?
    pub fn allowed(&self, lint: &str, line: u32) -> bool {
        self.allows.iter().any(|a| {
            a.lint == lint
                && match &a.lines {
                    None => true,
                    Some(ls) => ls.contains(&line),
                }
        })
    }
}

/// Find the index of the `}` matching the `{` at `open`, or the last
/// token if the file is unbalanced (lint passes must never panic on
/// the tree they check).
fn matching_brace(toks: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    for (i, t) in toks.iter().enumerate().skip(open) {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return i;
                    }
                }
                _ => {}
            }
        }
    }
    toks.len().saturating_sub(1)
}

/// Keywords that introduce an item and thereby consume any pending
/// attributes.
const ITEM_KEYWORDS: &[&str] = &[
    "fn",
    "struct",
    "enum",
    "union",
    "trait",
    "impl",
    "mod",
    "use",
    "static",
    "const",
    "type",
    "macro_rules",
    "extern",
];

/// Run the structural pass.
pub fn scan(toks: Vec<Token>) -> FileScan {
    let mut out = FileScan {
        toks,
        ..FileScan::default()
    };
    let toks = &out.toks;
    let mut test_regions: Vec<(usize, usize)> = Vec::new();
    let mut fns: Vec<FnSpan> = Vec::new();
    let mut must_use_types: Vec<String> = Vec::new();

    // Pending attribute state, reset when an item consumes it.
    let mut pending_test = false;
    let mut pending_must_use = false;
    let mut pending_pub = false;
    let mut pending_target_features: Vec<String> = Vec::new();

    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        match t.kind {
            TokKind::Punct if t.text == "#" => {
                // Attribute group `#[...]` or inner `#![...]`.
                let mut j = i + 1;
                if j < toks.len() && toks[j].kind == TokKind::Punct && toks[j].text == "!" {
                    j += 1;
                }
                if j < toks.len() && toks[j].kind == TokKind::Punct && toks[j].text == "[" {
                    // Collect idents (and string values, for
                    // `target_feature(enable = "...")`) to the
                    // matching `]`.
                    let mut depth = 0usize;
                    let mut idents: Vec<&str> = Vec::new();
                    let mut strs: Vec<&str> = Vec::new();
                    let mut k = j;
                    while k < toks.len() {
                        let a = &toks[k];
                        if a.kind == TokKind::Punct {
                            match a.text.as_str() {
                                "[" => depth += 1,
                                "]" => {
                                    depth -= 1;
                                    if depth == 0 {
                                        break;
                                    }
                                }
                                _ => {}
                            }
                        } else if a.kind == TokKind::Ident {
                            idents.push(&a.text);
                        } else if a.kind == TokKind::Str {
                            strs.push(&a.text);
                        }
                        k += 1;
                    }
                    // `not` makes the attribute ambiguous (`cfg(not(test))`
                    // is production code) — only unnegated test cfgs count.
                    let is_cfg_test = idents.contains(&"cfg")
                        && idents.contains(&"test")
                        && !idents.contains(&"not");
                    let is_test_attr = idents == ["test"] || idents.contains(&"should_panic");
                    if is_cfg_test || is_test_attr {
                        pending_test = true;
                    }
                    if idents.contains(&"must_use") {
                        pending_must_use = true;
                    }
                    if idents.contains(&"target_feature") {
                        // A feature string may name several features
                        // comma-separated ("avx2,fma"); split them.
                        for s in &strs {
                            let inner = s.trim_matches('"');
                            for feat in inner.split(',').map(str::trim).filter(|f| !f.is_empty()) {
                                pending_target_features.push(feat.to_string());
                            }
                        }
                    }
                    i = k + 1;
                    continue;
                }
                i += 1;
            }
            TokKind::Ident if t.text == "pub" => {
                pending_pub = true;
                i += 1;
            }
            TokKind::Ident if t.text == "fn" => {
                let line = t.line;
                let name = match toks.get(i + 1) {
                    Some(n) if n.kind == TokKind::Ident => n.text.clone(),
                    // `fn` pointer type or malformed — not an item.
                    _ => {
                        i += 1;
                        continue;
                    }
                };
                // Walk the signature: collect return-type idents after
                // `->`, stop at the body `{` or a `;`.
                let mut ret_idents = Vec::new();
                let mut in_ret = false;
                let mut body = None;
                let mut j = i + 2;
                while j < toks.len() {
                    let s = &toks[j];
                    match s.kind {
                        TokKind::Punct if s.text == "->" => in_ret = true,
                        TokKind::Punct if s.text == "{" => {
                            body = Some((j, matching_brace(toks, j)));
                            break;
                        }
                        TokKind::Punct if s.text == ";" => break,
                        TokKind::Ident if s.text == "where" => in_ret = false,
                        TokKind::Ident if in_ret => ret_idents.push(s.text.clone()),
                        _ => {}
                    }
                    j += 1;
                }
                if pending_test {
                    if let Some((a, b)) = body {
                        test_regions.push((a, b));
                    }
                }
                fns.push(FnSpan {
                    name,
                    is_pub: pending_pub,
                    has_must_use: pending_must_use,
                    ret_idents,
                    body,
                    line,
                    target_features: std::mem::take(&mut pending_target_features),
                });
                pending_test = false;
                pending_must_use = false;
                pending_pub = false;
                // Continue scanning *inside* the body too (nested fns,
                // test regions in nested modules).
                i += 2;
            }
            TokKind::Ident if t.text == "struct" || t.text == "enum" || t.text == "union" => {
                if let Some(n) = toks.get(i + 1) {
                    if n.kind == TokKind::Ident && pending_must_use {
                        must_use_types.push(n.text.clone());
                    }
                }
                if pending_test {
                    // `#[cfg(test)] struct ...` — treat its body (if
                    // any) as test code.
                    if let Some(open) = next_brace_before_semi(toks, i + 1) {
                        test_regions.push((open, matching_brace(toks, open)));
                    }
                }
                pending_test = false;
                pending_must_use = false;
                pending_pub = false;
                pending_target_features.clear();
                i += 1;
            }
            TokKind::Ident if t.text == "mod" || t.text == "impl" || t.text == "trait" => {
                if pending_test {
                    if let Some(open) = next_brace_before_semi(toks, i + 1) {
                        test_regions.push((open, matching_brace(toks, open)));
                    }
                }
                pending_test = false;
                pending_must_use = false;
                pending_pub = false;
                pending_target_features.clear();
                i += 1;
            }
            TokKind::Ident if ITEM_KEYWORDS.contains(&t.text.as_str()) => {
                // use / static / const / type / macro_rules / extern:
                // consume pending attributes without special handling.
                if pending_test {
                    if let Some(open) = next_brace_before_semi(toks, i + 1) {
                        test_regions.push((open, matching_brace(toks, open)));
                    }
                }
                pending_test = false;
                pending_must_use = false;
                pending_pub = false;
                pending_target_features.clear();
                i += 1;
            }
            _ => i += 1,
        }
    }

    // Allow directives, from comment tokens. Doc comments are skipped:
    // they *document* the directive syntax rather than invoke it.
    let mut allows = Vec::new();
    let mut malformed = Vec::new();
    for (ci, c) in out.toks.iter().enumerate() {
        if c.kind != TokKind::LineComment && c.kind != TokKind::BlockComment {
            continue;
        }
        if is_doc_comment(c) {
            continue;
        }
        let Some(pos) = c.text.find("bs-lint:") else {
            continue;
        };
        let directive = c.text[pos + "bs-lint:".len()..].trim();
        let file_wide = directive.starts_with("allow-file(");
        let prefix = if file_wide { "allow-file(" } else { "allow(" };
        if !directive.starts_with(prefix) {
            malformed.push((
                c.line,
                format!("unrecognized bs-lint directive: `{directive}`"),
            ));
            continue;
        }
        let rest = &directive[prefix.len()..];
        let Some(close) = rest.find(')') else {
            malformed.push((c.line, "missing `)` in bs-lint allow directive".to_string()));
            continue;
        };
        let lint = rest[..close].trim().to_string();
        if !crate::config::LINT_NAMES.contains(&lint.as_str()) {
            malformed.push((c.line, format!("allow names unknown lint `{lint}`")));
            continue;
        }
        let justification = rest[close + 1..].trim();
        if !justification.starts_with("--")
            || justification.trim_start_matches('-').trim().len() < 3
        {
            malformed.push((
                c.line,
                format!("allow({lint}) needs a `-- <justification>`"),
            ));
            continue;
        }
        let lines = if file_wide {
            None
        } else {
            // Cover the directive's own line (trailing-comment form)
            // and the first code line after it (preceding-comment form).
            let mut lines = vec![c.line];
            if let Some(next) = out.toks[ci + 1..]
                .iter()
                .find(|t| !t.is_comment() && t.line > c.line)
            {
                lines.push(next.line);
            }
            Some(lines)
        };
        allows.push(Allow {
            lint,
            lines,
            justification: justification.trim_start_matches('-').trim().to_string(),
            line: c.line,
        });
    }

    out.test_regions = test_regions;
    out.fns = fns;
    out.allows = allows;
    out.must_use_types = must_use_types;
    out.malformed_directives = malformed;
    out
}

/// `///`, `//!`, `/** */`, `/*! */` — documentation, not directives.
fn is_doc_comment(t: &Token) -> bool {
    ["///", "//!", "/**", "/*!"]
        .iter()
        .any(|p| t.text.starts_with(p))
}

/// First `{` after `from`, unless a `;` intervenes at nesting level 0
/// of `()`/`[]`/`<...>`-free scanning (good enough for item headers).
fn next_brace_before_semi(toks: &[Token], from: usize) -> Option<usize> {
    for (i, t) in toks.iter().enumerate().skip(from) {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "{" => return Some(i),
                ";" => return None,
                _ => {}
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokens::tokenize;

    fn scan_src(src: &str) -> FileScan {
        scan(tokenize(src))
    }

    #[test]
    fn finds_fns_and_bodies() {
        let s = scan_src("pub fn a() -> Result<u32> { 1 }\nfn b() {}\n");
        assert_eq!(s.fns.len(), 2);
        assert!(s.fns[0].is_pub);
        assert_eq!(s.fns[0].ret_idents, vec!["Result", "u32"]);
        assert!(!s.fns[1].is_pub);
        assert!(s.fns[1].ret_idents.is_empty());
    }

    #[test]
    fn cfg_test_module_is_test_region() {
        let src =
            "fn lib() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n fn t() { y.unwrap(); }\n}\n";
        let s = scan_src(src);
        // The unwrap inside `mod tests` is in a test region; the one in
        // `lib` is not.
        let unwraps: Vec<usize> = s
            .toks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.text == "unwrap")
            .map(|(i, _)| i)
            .collect();
        assert_eq!(unwraps.len(), 2);
        assert!(!s.in_test(unwraps[0]));
        assert!(s.in_test(unwraps[1]));
    }

    #[test]
    fn test_attr_fn_is_test_region() {
        let s = scan_src("#[test]\nfn t() { z.unwrap(); }\nfn lib() {}\n");
        let unwrap_idx = s.toks.iter().position(|t| t.text == "unwrap").unwrap();
        assert!(s.in_test(unwrap_idx));
    }

    #[test]
    fn must_use_attrs_recorded() {
        let s = scan_src("#[must_use]\npub struct Plan;\n#[must_use]\npub fn f() -> u8 { 0 }\npub fn g() -> u8 { 0 }\n");
        assert_eq!(s.must_use_types, vec!["Plan"]);
        assert!(s.fns[0].has_must_use);
        assert!(!s.fns[1].has_must_use);
    }

    #[test]
    fn enclosing_fns_nest() {
        let s = scan_src("fn outer() { fn inner() { q.clone(); } }\n");
        let idx = s.toks.iter().position(|t| t.text == "clone").unwrap();
        assert_eq!(s.enclosing_fns(idx), vec!["outer", "inner"]);
    }

    #[test]
    fn allow_directive_covers_next_code_line() {
        let src =
            "// bs-lint: allow(float-eq) -- exact sentinel\nlet a = x == 1.5;\nlet b = y == 2.5;\n";
        let s = scan_src(src);
        assert!(s.allowed("float-eq", 1));
        assert!(s.allowed("float-eq", 2));
        assert!(!s.allowed("float-eq", 3));
        assert!(!s.allowed("no-panic-paths", 2));
    }

    #[test]
    fn trailing_allow_covers_its_own_line() {
        let src = "let a = x.unwrap(); // bs-lint: allow(no-panic-paths) -- boot path\n";
        let s = scan_src(src);
        assert!(s.allowed("no-panic-paths", 1));
    }

    #[test]
    fn allow_file_covers_everything() {
        let s = scan_src("// bs-lint: allow-file(safety-comment) -- vetted module\n");
        assert!(s.allowed("safety-comment", 999));
    }

    #[test]
    fn target_feature_attrs_recorded() {
        let src = "\
#[target_feature(enable = \"avx2\", enable = \"fma\")]\nunsafe fn k() {}\n\
#[target_feature(enable = \"avx2,fma\")]\nunsafe fn k2() {}\nfn plain() {}\n";
        let s = scan_src(src);
        assert_eq!(s.fns[0].target_features, vec!["avx2", "fma"]);
        assert_eq!(s.fns[1].target_features, vec!["avx2", "fma"]);
        assert!(s.fns[2].target_features.is_empty());
    }

    #[test]
    fn allow_records_justification_and_line() {
        let src =
            "fn f() {}\n// bs-lint: allow(float-eq) -- exact sentinel value\nlet a = x == 1.5;\n";
        let s = scan_src(src);
        assert_eq!(s.allows.len(), 1);
        assert_eq!(s.allows[0].justification, "exact sentinel value");
        assert_eq!(s.allows[0].line, 2);
    }

    #[test]
    fn doc_comments_never_parse_as_directives() {
        let src = "\
//! Waive findings with `// bs-lint: allow(<lint>) -- <reason>`.
/// Or file-wide: `bs-lint: allow-file(...)`.
fn f() {}
";
        let s = scan_src(src);
        assert!(s.allows.is_empty());
        assert!(
            s.malformed_directives.is_empty(),
            "{:?}",
            s.malformed_directives
        );
    }

    #[test]
    fn malformed_directives_reported() {
        let s = scan_src("// bs-lint: allow(no-panic-paths)\n// bs-lint: allow(bogus) -- reason\n// bs-lint: disallow(x)\n");
        assert_eq!(s.malformed_directives.len(), 3);
        assert!(s.allows.is_empty());
    }
}
