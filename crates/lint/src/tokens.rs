//! A minimal Rust tokenizer — just enough lexical structure for the
//! token-level lints.
//!
//! The tokenizer understands the pieces of Rust surface syntax that a
//! text-match lint would trip over: line and (nested) block comments,
//! string / raw-string / byte-string literals, character literals vs
//! lifetimes, numeric literals (classified int vs float), identifiers
//! (including raw `r#ident`), and multi-character punctuation. It does
//! **not** parse; downstream passes reconstruct the little structure
//! they need (brace depth, `#[...]` attributes, `fn` items) from the
//! token stream.

/// Lexical class of a [`Token`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `unwrap`, `r#type`, ...).
    Ident,
    /// Integer literal (`42`, `0xFF`, `1_000u64`).
    Int,
    /// Floating-point literal (`0.0`, `1e-3`, `2.5f64`).
    Float,
    /// String literal of any flavour (`"s"`, `r#"s"#`, `b"s"`).
    Str,
    /// Character or byte literal (`'a'`, `b'\n'`).
    Char,
    /// Lifetime or loop label (`'a`, `'steps`).
    Lifetime,
    /// Punctuation; multi-character operators arrive as one token
    /// (`==`, `->`, `::`, ...).
    Punct,
    /// A `//` comment, doc or plain; `text` excludes the newline.
    LineComment,
    /// A `/* ... */` comment (possibly nested), including delimiters.
    BlockComment,
}

/// One lexical token with its 1-based source line.
#[derive(Clone, Debug)]
pub struct Token {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

impl Token {
    /// `true` for the comment kinds.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }
}

/// Multi-character punctuation recognized as single tokens, longest
/// first so the greedy scan below picks the full operator.
const MULTI_PUNCT: &[&str] = &[
    "..=", "...", "<<=", ">>=", "==", "!=", "<=", ">=", "->", "=>", "::", "..", "&&", "||", "<<",
    ">>", "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=",
];

/// Tokenize `src`. The lexer is forgiving: malformed input (an
/// unterminated string, say) never panics — it degrades to consuming
/// the rest of the file as the current token, which is the right
/// behaviour for a lint that must not crash on the tree it checks.
pub fn tokenize(src: &str) -> Vec<Token> {
    let b = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let push = |toks: &mut Vec<Token>, kind, text: &str, line| {
        toks.push(Token {
            kind,
            text: text.to_string(),
            line,
        });
    };
    while i < b.len() {
        let c = b[i];
        // Whitespace.
        if c.is_ascii_whitespace() {
            if c == b'\n' {
                line += 1;
            }
            i += 1;
            continue;
        }
        let start = i;
        let start_line = line;
        // Line comment.
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'/' {
            while i < b.len() && b[i] != b'\n' {
                i += 1;
            }
            push(&mut toks, TokKind::LineComment, &src[start..i], start_line);
            continue;
        }
        // Block comment (nested).
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
            let mut depth = 1usize;
            i += 2;
            while i < b.len() && depth > 0 {
                if b[i] == b'\n' {
                    line += 1;
                    i += 1;
                } else if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            push(&mut toks, TokKind::BlockComment, &src[start..i], start_line);
            continue;
        }
        // Raw / byte string prefixes: r"..", r#".."#, b"..", br#".."#,
        // and raw identifiers r#ident.
        if (c == b'r' || c == b'b') && i + 1 < b.len() {
            let (prefix_len, is_raw) = match (c, b.get(i + 1), b.get(i + 2)) {
                (b'r', Some(b'"'), _) | (b'r', Some(b'#'), _) => (1, true),
                (b'b', Some(b'"'), _) => (1, false),
                (b'b', Some(b'r'), Some(b'"')) | (b'b', Some(b'r'), Some(b'#')) => (2, true),
                _ => (0, false),
            };
            if prefix_len > 0 {
                let mut j = i + prefix_len;
                let mut hashes = 0usize;
                while j < b.len() && b[j] == b'#' {
                    hashes += 1;
                    j += 1;
                }
                if j < b.len() && b[j] == b'"' {
                    // Raw or plain string with this prefix.
                    j += 1;
                    if is_raw || hashes == 0 {
                        if hashes == 0 && !is_raw {
                            // b"..." — escapes apply.
                            let (ni, nl) = scan_plain_string(b, j, line);
                            i = ni;
                            line = nl;
                        } else {
                            // Raw: ends at `"` followed by `hashes` #s.
                            loop {
                                if j >= b.len() {
                                    break;
                                }
                                if b[j] == b'\n' {
                                    line += 1;
                                    j += 1;
                                    continue;
                                }
                                if b[j] == b'"' {
                                    let mut k = 0usize;
                                    while k < hashes && j + 1 + k < b.len() && b[j + 1 + k] == b'#'
                                    {
                                        k += 1;
                                    }
                                    if k == hashes {
                                        j += 1 + hashes;
                                        break;
                                    }
                                }
                                j += 1;
                            }
                            i = j;
                        }
                        push(&mut toks, TokKind::Str, &src[start..i], start_line);
                        continue;
                    }
                } else if c == b'r' && hashes >= 1 && j < b.len() && is_ident_start(b[j]) {
                    // Raw identifier r#ident.
                    let mut k = j;
                    while k < b.len() && is_ident_continue(b[k]) {
                        k += 1;
                    }
                    i = k;
                    push(&mut toks, TokKind::Ident, &src[start..i], start_line);
                    continue;
                }
            }
            // Fall through: plain identifier starting with r/b.
        }
        // Plain string.
        if c == b'"' {
            let (ni, nl) = scan_plain_string(b, i + 1, line);
            i = ni;
            line = nl;
            push(&mut toks, TokKind::Str, &src[start..i], start_line);
            continue;
        }
        // Char literal, byte char b'x', or lifetime.
        if c == b'\'' || (c == b'b' && i + 1 < b.len() && b[i + 1] == b'\'') {
            let q = if c == b'b' { i + 1 } else { i };
            let after = q + 1;
            let is_lifetime = c != b'b'
                && after < b.len()
                && is_ident_start(b[after])
                && !(after + 1 < b.len() && b[after + 1] == b'\'');
            if is_lifetime {
                let mut k = after;
                while k < b.len() && is_ident_continue(b[k]) {
                    k += 1;
                }
                i = k;
                push(&mut toks, TokKind::Lifetime, &src[start..i], start_line);
            } else {
                // Char literal: consume to the closing quote, honoring
                // backslash escapes.
                let mut k = after;
                while k < b.len() {
                    if b[k] == b'\\' {
                        k += 2;
                    } else if b[k] == b'\'' {
                        k += 1;
                        break;
                    } else if b[k] == b'\n' {
                        break; // malformed; stop at line end
                    } else {
                        k += 1;
                    }
                }
                i = k;
                push(&mut toks, TokKind::Char, &src[start..i], start_line);
            }
            continue;
        }
        // Number.
        if c.is_ascii_digit() {
            let mut k = i + 1;
            let mut is_float = false;
            if c == b'0' && k < b.len() && matches!(b[k], b'x' | b'o' | b'b') {
                // Radix literal: digits/underscores/hex letters.
                k += 1;
                while k < b.len() && (b[k].is_ascii_alphanumeric() || b[k] == b'_') {
                    k += 1;
                }
            } else {
                while k < b.len() && (b[k].is_ascii_digit() || b[k] == b'_') {
                    k += 1;
                }
                // Fractional part — but not `..` (range) and not a
                // method call on an integer (`1.max(2)`).
                if k < b.len()
                    && b[k] == b'.'
                    && !(k + 1 < b.len() && (b[k + 1] == b'.' || is_ident_start(b[k + 1])))
                {
                    is_float = true;
                    k += 1;
                    while k < b.len() && (b[k].is_ascii_digit() || b[k] == b'_') {
                        k += 1;
                    }
                }
                // Exponent.
                if k < b.len()
                    && (b[k] == b'e' || b[k] == b'E')
                    && (k + 1 < b.len()
                        && (b[k + 1].is_ascii_digit()
                            || ((b[k + 1] == b'+' || b[k + 1] == b'-')
                                && k + 2 < b.len()
                                && b[k + 2].is_ascii_digit())))
                {
                    is_float = true;
                    k += 1;
                    if b[k] == b'+' || b[k] == b'-' {
                        k += 1;
                    }
                    while k < b.len() && (b[k].is_ascii_digit() || b[k] == b'_') {
                        k += 1;
                    }
                }
                // Suffix (f64, u32, usize, ...).
                let suffix_start = k;
                while k < b.len() && is_ident_continue(b[k]) {
                    k += 1;
                }
                if src[suffix_start..k].starts_with('f') {
                    is_float = true;
                }
            }
            i = k;
            let kind = if is_float {
                TokKind::Float
            } else {
                TokKind::Int
            };
            push(&mut toks, kind, &src[start..i], start_line);
            continue;
        }
        // Identifier / keyword.
        if is_ident_start(c) {
            let mut k = i + 1;
            while k < b.len() && is_ident_continue(b[k]) {
                k += 1;
            }
            i = k;
            push(&mut toks, TokKind::Ident, &src[start..i], start_line);
            continue;
        }
        // Punctuation: longest multi-char operator first.
        let rest = &src[i..];
        let mut matched = false;
        for op in MULTI_PUNCT {
            if rest.starts_with(op) {
                i += op.len();
                push(&mut toks, TokKind::Punct, op, start_line);
                matched = true;
                break;
            }
        }
        if !matched {
            // Single char (non-ASCII bytes are consumed one scalar at a
            // time so we never split a UTF-8 sequence).
            let ch_len = src[i..].chars().next().map(char::len_utf8).unwrap_or(1);
            i += ch_len;
            push(&mut toks, TokKind::Punct, &src[start..i], start_line);
        }
    }
    toks
}

fn scan_plain_string(b: &[u8], mut i: usize, mut line: u32) -> (usize, u32) {
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'"' => {
                i += 1;
                break;
            }
            b'\n' => {
                line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    (i.min(b.len()), line)
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_'
}

fn is_ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        tokenize(src)
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn comments_strings_and_chars() {
        let ts = kinds("// line\n/* b /* nest */ */ \"s\\\"t\" 'a' '\\n' b'q'");
        assert_eq!(ts[0].0, TokKind::LineComment);
        assert_eq!(ts[1].0, TokKind::BlockComment);
        assert_eq!(ts[2], (TokKind::Str, "\"s\\\"t\"".to_string()));
        assert_eq!(ts[3], (TokKind::Char, "'a'".to_string()));
        assert_eq!(ts[4], (TokKind::Char, "'\\n'".to_string()));
        assert_eq!(ts[5], (TokKind::Char, "b'q'".to_string()));
    }

    #[test]
    fn lifetimes_and_labels() {
        let ts = kinds("&'a str 'steps: loop {}");
        assert!(ts.contains(&(TokKind::Lifetime, "'a".to_string())));
        assert!(ts.contains(&(TokKind::Lifetime, "'steps".to_string())));
    }

    #[test]
    fn numbers_classified() {
        let ts = kinds("0 1_000 0.0 1e-3 2.5f64 3f32 0xFF 1..n 4.max(5)");
        let floats: Vec<_> = ts
            .iter()
            .filter(|(k, _)| *k == TokKind::Float)
            .map(|(_, t)| t.clone())
            .collect();
        assert_eq!(floats, vec!["0.0", "1e-3", "2.5f64", "3f32"]);
        // `1..n` keeps the range operator; `4.max` keeps the int.
        assert!(ts.contains(&(TokKind::Punct, "..".to_string())));
        assert!(ts.contains(&(TokKind::Int, "4".to_string())));
    }

    #[test]
    fn multi_char_punct_is_one_token() {
        let ts = kinds("a == b != c -> d :: e");
        let puncts: Vec<_> = ts
            .iter()
            .filter(|(k, _)| *k == TokKind::Punct)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(puncts, vec!["==", "!=", "->", "::"]);
    }

    #[test]
    fn raw_strings_and_raw_idents() {
        let ts = kinds(r##"r"raw" r#"ra"w"# r#type b"bytes""##);
        assert_eq!(ts[0].0, TokKind::Str);
        assert_eq!(ts[1].0, TokKind::Str);
        assert_eq!(ts[2], (TokKind::Ident, "r#type".to_string()));
        assert_eq!(ts[3].0, TokKind::Str);
    }

    #[test]
    fn line_numbers_advance() {
        let ts = tokenize("a\nb\n\nc");
        assert_eq!(ts[0].line, 1);
        assert_eq!(ts[1].line, 2);
        assert_eq!(ts[2].line, 4);
    }

    #[test]
    fn unterminated_string_does_not_panic() {
        let ts = tokenize("let s = \"oops");
        assert_eq!(ts.last().unwrap().kind, TokKind::Str);
    }

    #[test]
    fn forbidden_spellings_inside_raw_strings_stay_strings() {
        // The payloads the lints hunt for, wrapped in every string
        // flavour: none may surface as an Ident or Punct token.
        let src = r##"let a = r#"unsafe { p.read() } x.unwrap() panic!()"#;
let b = b"y == 2.5 and todo!()";
let c = br#"*mut f64 escaping"#;"##;
        let ts = tokenize(src);
        assert_eq!(ts.iter().filter(|t| t.kind == TokKind::Str).count(), 3);
        assert!(ts.iter().all(|t| t.kind != TokKind::Ident
            || (t.text != "unsafe" && t.text != "unwrap" && t.text != "panic")));
        assert!(ts.iter().all(|t| t.kind != TokKind::Float));
    }

    #[test]
    fn raw_string_with_hashes_spans_lines_and_keeps_line_numbers() {
        // The inner `"#` must not close an r##-string; the token after
        // the literal must land on the right line.
        let src = "let s = r##\"quote \"# inside\nsecond line .unwrap()\"##;\nnext";
        let ts = tokenize(src);
        let s = ts.iter().find(|t| t.kind == TokKind::Str).unwrap();
        assert!(s.text.contains("second line"));
        let next = ts.iter().find(|t| t.text == "next").unwrap();
        assert_eq!(next.line, 3);
    }

    #[test]
    fn nested_block_comment_swallows_code_shaped_text() {
        let src = "/* a /* unsafe { boom() } */ x.unwrap() == 2.5 */ fn f() {}";
        let ts = tokenize(src);
        assert_eq!(ts[0].kind, TokKind::BlockComment);
        assert!(ts[0].text.ends_with("*/"));
        // Only the trailing real code tokenizes.
        let idents: Vec<_> = ts
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(idents, vec!["fn", "f"]);
    }

    #[test]
    fn raw_identifier_keywords_are_not_the_keyword() {
        // `r#unsafe` is a legal identifier; `safety-comment` keys off
        // Ident tokens spelled exactly `unsafe`, so the raw spelling
        // must come through verbatim.
        let ts = kinds("fn r#unsafe() { let r#loop = 1; }");
        assert!(ts.contains(&(TokKind::Ident, "r#unsafe".to_string())));
        assert!(ts.contains(&(TokKind::Ident, "r#loop".to_string())));
        assert!(!ts
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "unsafe"));
    }

    #[test]
    fn quote_char_literals_do_not_open_strings() {
        let ts = kinds("let q = '\"'; let h = '#'; after");
        assert!(ts.contains(&(TokKind::Char, "'\"'".to_string())));
        assert!(ts.contains(&(TokKind::Char, "'#'".to_string())));
        assert!(ts.contains(&(TokKind::Ident, "after".to_string())));
        assert!(!ts.iter().any(|(k, _)| *k == TokKind::Str));
    }
}
