//! **bs-lint** — a dependency-free static-analysis gate for the block
//! Schur workspace.
//!
//! The block Schur algorithm's correctness claims rest on invariants a
//! compiler cannot see: hot loops must stay allocation-free for the
//! paper's flop/storage accounting (eqs. 25–32) to mean anything,
//! library paths must not abort a production solver, and every escape
//! hatch (`unsafe`, exact float compares) must carry its justification
//! in the source. This crate machine-checks those rules with a
//! token-level pass over the workspace — pure `std`, no syn, no
//! rustc internals — so the gate runs anywhere the code builds.
//!
//! Run it with `cargo run -p bs-lint` from the workspace root (or see
//! `scripts/check.sh`, which runs it as a CI stage). Configuration
//! lives in `lint.toml`; individual findings are waived in the source
//! with `// bs-lint: allow(<lint>) -- <justification>`.

pub mod config;
pub mod lints;
pub mod scan;
pub mod tokens;

use config::Config;
use std::collections::BTreeSet;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

/// One finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// Lint name (one of [`config::LINT_NAMES`], or `allow-directive`
    /// for a malformed waiver).
    pub lint: &'static str,
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.lint, self.message
        )
    }
}

/// Lint a set of `(workspace-relative path, contents)` pairs.
///
/// Two passes: the first collects `#[must_use]`-annotated type names
/// across every file (so a type declared in `plan.rs` satisfies
/// `must-use-results` for a constructor in `solver.rs`); the second
/// runs the lint catalog per file.
pub fn lint_files(files: &[(String, String)], cfg: &Config) -> Vec<Diagnostic> {
    let scans: Vec<(&str, scan::FileScan)> = files
        .iter()
        .map(|(path, src)| (path.as_str(), scan::scan(tokens::tokenize(src))))
        .collect();
    let registry: BTreeSet<String> = scans
        .iter()
        .flat_map(|(_, s)| s.must_use_types.iter().cloned())
        .collect();
    let mut out = Vec::new();
    for (path, s) in &scans {
        out.extend(lints::lint_file(path, s, cfg, &registry));
    }
    out.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    out
}

/// Collect the workspace source set: every `.rs` file under
/// `crates/*/src` and under the root `src/`, skipping `target/` and
/// hidden directories. Returned paths are workspace-relative with
/// forward slashes, sorted.
pub fn collect_workspace_files(root: &Path) -> io::Result<Vec<(String, String)>> {
    let mut src_dirs: Vec<PathBuf> = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in std::fs::read_dir(&crates_dir)? {
            let sub = entry?.path().join("src");
            if sub.is_dir() {
                src_dirs.push(sub);
            }
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        src_dirs.push(root_src);
    }
    let mut files = Vec::new();
    for dir in src_dirs {
        collect_rs_files(&dir, &mut files)?;
    }
    let mut out = Vec::new();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(&path)?;
        out.push((rel, src));
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(out)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if name.starts_with('.') || name == "target" {
            continue;
        }
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_crosses_files() {
        let cfg = Config {
            library_crates: vec!["crates/core".to_string()],
            must_use_types: vec!["Plan".to_string()],
            ..Config::default()
        };
        let files = vec![
            (
                "crates/core/src/a.rs".to_string(),
                "#[must_use] pub struct Plan;".to_string(),
            ),
            (
                "crates/core/src/b.rs".to_string(),
                "pub fn make() -> Plan { Plan }".to_string(),
            ),
        ];
        assert!(lint_files(&files, &cfg).is_empty());
        // Without the annotation the constructor in b.rs is flagged.
        let files2 = vec![
            (
                "crates/core/src/a.rs".to_string(),
                "pub struct Plan;".to_string(),
            ),
            files[1].clone(),
        ];
        let d = lint_files(&files2, &cfg);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].lint, "must-use-results");
    }
}
