//! **bs-lint** — a dependency-free static-analysis gate for the block
//! Schur workspace.
//!
//! The block Schur algorithm's correctness claims rest on invariants a
//! compiler cannot see: hot loops must stay allocation-free for the
//! paper's flop/storage accounting (eqs. 25–32) to mean anything,
//! library paths must not abort a production solver, and every escape
//! hatch (`unsafe`, exact float compares) must carry its justification
//! in the source. This crate machine-checks those rules with a
//! token-level pass over the workspace — pure `std`, no syn, no
//! rustc internals — so the gate runs anywhere the code builds.
//!
//! Run it with `cargo run -p bs-lint` from the workspace root (or see
//! `scripts/check.sh`, which runs it as a CI stage). Configuration
//! lives in `lint.toml`; individual findings are waived in the source
//! with `// bs-lint: allow(<lint>) -- <justification>`.

pub mod atomics;
pub mod config;
pub mod lints;
pub mod scan;
pub mod tokens;
pub mod unsafe_contract;

use config::Config;
use std::collections::BTreeSet;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use tokens::TokKind;

/// One finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// Lint name (one of [`config::LINT_NAMES`], or `allow-directive`
    /// for a malformed waiver).
    pub lint: &'static str,
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.lint, self.message
        )
    }
}

/// Workspace-wide facts collected in a first pass over every file,
/// consulted by the cross-file lints: `must-use-results` (type
/// annotations travel across files) and `unsafe-contract` (SAFETY
/// claims may reference identifiers defined elsewhere, e.g. the
/// dispatch gate in `kernel/mod.rs`).
#[derive(Debug, Default)]
pub struct Registry {
    /// Type names declared `#[must_use]` anywhere in the workspace.
    pub must_use_types: BTreeSet<String>,
    /// Every identifier token in the workspace (for SAFETY-claim
    /// reference resolution).
    pub idents: BTreeSet<String>,
    /// Every `fn` name in the workspace (for `[isa ...]` dispatch-gate
    /// claims).
    pub fn_names: BTreeSet<String>,
}

impl Registry {
    /// Build the registry from scanned files.
    pub fn from_scans<'a>(scans: impl Iterator<Item = &'a scan::FileScan>) -> Registry {
        let mut r = Registry::default();
        for s in scans {
            r.must_use_types.extend(s.must_use_types.iter().cloned());
            for t in &s.toks {
                if t.kind == TokKind::Ident {
                    r.idents.insert(t.text.clone());
                }
            }
            for f in &s.fns {
                r.fn_names.insert(f.name.clone());
            }
        }
        r
    }
}

/// One `// bs-lint: allow(...)` waiver, as surfaced by the `--waivers`
/// report.
#[derive(Clone, Debug)]
pub struct Waiver {
    pub file: String,
    pub line: u32,
    pub lint: String,
    /// `allow-file(...)` form.
    pub file_wide: bool,
    pub justification: String,
}

/// Collect every waiver in the file set, plus diagnostics for the ones
/// that fail the report's honesty rules: malformed directives (which
/// includes empty justifications) and justifications duplicated
/// verbatim across sites — a copy-pasted excuse says nothing about the
/// new site.
pub fn collect_waivers(files: &[(String, String)]) -> (Vec<Waiver>, Vec<Diagnostic>) {
    let mut waivers = Vec::new();
    let mut diags = Vec::new();
    for (path, src) in files {
        let s = scan::scan(tokens::tokenize(src));
        for (line, msg) in &s.malformed_directives {
            diags.push(Diagnostic {
                file: path.clone(),
                line: *line,
                lint: "allow-directive",
                message: msg.clone(),
            });
        }
        for a in &s.allows {
            waivers.push(Waiver {
                file: path.clone(),
                line: a.line,
                lint: a.lint.clone(),
                file_wide: a.lines.is_none(),
                justification: a.justification.clone(),
            });
        }
    }
    waivers.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    for (i, w) in waivers.iter().enumerate() {
        if let Some(first) = waivers[..i]
            .iter()
            .find(|p| p.justification == w.justification)
        {
            diags.push(Diagnostic {
                file: w.file.clone(),
                line: w.line,
                lint: "allow-directive",
                message: format!(
                    "justification duplicated verbatim from {}:{}; describe what makes \
                     this site safe specifically",
                    first.file, first.line
                ),
            });
        }
    }
    diags.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    (waivers, diags)
}

/// Lint a set of `(workspace-relative path, contents)` pairs.
///
/// Two passes: the first builds the workspace [`Registry`] (so a type
/// declared in `plan.rs` satisfies `must-use-results` for a
/// constructor in `solver.rs`, and a SAFETY claim in `blas3.rs` can
/// reference the dispatch gate in `kernel/mod.rs`); the second runs
/// the lint catalog per file.
pub fn lint_files(files: &[(String, String)], cfg: &Config) -> Vec<Diagnostic> {
    let scans: Vec<(&str, scan::FileScan)> = files
        .iter()
        .map(|(path, src)| (path.as_str(), scan::scan(tokens::tokenize(src))))
        .collect();
    let registry = Registry::from_scans(scans.iter().map(|(_, s)| s));
    let mut out = Vec::new();
    for (path, s) in &scans {
        out.extend(lints::lint_file(path, s, cfg, &registry));
    }
    // Manifest entries naming files that do not exist are stale.
    if cfg.enabled("hot-path-coverage") {
        for exempt in cfg.hot_path_exempt.keys() {
            if !files.iter().any(|(p, _)| p == exempt) {
                out.push(Diagnostic {
                    file: exempt.clone(),
                    line: 1,
                    lint: "hot-path-coverage",
                    message: "[hot-path-exempt] names a file that does not exist — stale \
                              manifest entry"
                        .to_string(),
                });
            }
        }
    }
    out.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    out
}

/// Collect the workspace source set: every `.rs` file under
/// `crates/*/src` and under the root `src/`, skipping `target/` and
/// hidden directories. Returned paths are workspace-relative with
/// forward slashes, sorted.
pub fn collect_workspace_files(root: &Path) -> io::Result<Vec<(String, String)>> {
    let mut src_dirs: Vec<PathBuf> = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in std::fs::read_dir(&crates_dir)? {
            let sub = entry?.path().join("src");
            if sub.is_dir() {
                src_dirs.push(sub);
            }
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        src_dirs.push(root_src);
    }
    let mut files = Vec::new();
    for dir in src_dirs {
        collect_rs_files(&dir, &mut files)?;
    }
    let mut out = Vec::new();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(&path)?;
        out.push((rel, src));
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(out)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if name.starts_with('.') || name == "target" {
            continue;
        }
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_crosses_files() {
        let cfg = Config {
            library_crates: vec!["crates/core".to_string()],
            must_use_types: vec!["Plan".to_string()],
            ..Config::default()
        };
        let files = vec![
            (
                "crates/core/src/a.rs".to_string(),
                "#[must_use] pub struct Plan;".to_string(),
            ),
            (
                "crates/core/src/b.rs".to_string(),
                "pub fn make() -> Plan { Plan }".to_string(),
            ),
        ];
        assert!(lint_files(&files, &cfg).is_empty());
        // Without the annotation the constructor in b.rs is flagged.
        let files2 = vec![
            (
                "crates/core/src/a.rs".to_string(),
                "pub struct Plan;".to_string(),
            ),
            files[1].clone(),
        ];
        let d = lint_files(&files2, &cfg);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].lint, "must-use-results");
    }
}
