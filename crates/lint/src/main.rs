//! The `bs-lint` gate binary.
//!
//! ```text
//! cargo run -p bs-lint                  # lint the enclosing workspace
//! cargo run -p bs-lint -- --root DIR    # lint another tree
//! cargo run -p bs-lint -- --config F    # use a specific manifest
//! cargo run -p bs-lint -- --list        # print the lint catalog
//! cargo run -p bs-lint -- --waivers     # report every allow directive
//! ```
//!
//! `--waivers` prints each `// bs-lint: allow(...)` with its file:line
//! and justification, and fails if any justification is empty or
//! duplicated verbatim — the waiver ledger stays honest as the
//! workspace grows.
//!
//! Exit status: `0` clean, `1` violations found, `2` usage / IO /
//! config error. The workspace root is located by walking upward from
//! the current directory until a `lint.toml` is found.

use bs_lint::config::{Config, LINT_NAMES};
use std::path::PathBuf;
use std::process::ExitCode;

fn find_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("lint.toml").is_file() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut config_path: Option<PathBuf> = None;
    let mut quiet = false;
    let mut waivers_mode = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--config" => config_path = args.next().map(PathBuf::from),
            "--quiet" | "-q" => quiet = true,
            "--waivers" => waivers_mode = true,
            "--list" => {
                for name in LINT_NAMES {
                    println!("{name}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!(
                    "bs-lint: static-analysis gate\n\
                     usage: bs-lint [--root DIR] [--config FILE] [--quiet] [--list] [--waivers]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("bs-lint: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root.or_else(find_root) {
        Some(r) => r,
        None => {
            eprintln!("bs-lint: no lint.toml found from the current directory upward");
            return ExitCode::from(2);
        }
    };
    let config_path = config_path.unwrap_or_else(|| root.join("lint.toml"));
    let config_src = match std::fs::read_to_string(&config_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bs-lint: cannot read {}: {e}", config_path.display());
            return ExitCode::from(2);
        }
    };
    let cfg = match Config::parse(&config_src) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("bs-lint: {}: {e}", config_path.display());
            return ExitCode::from(2);
        }
    };
    let files = match bs_lint::collect_workspace_files(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("bs-lint: walking {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    if waivers_mode {
        let (waivers, problems) = bs_lint::collect_waivers(&files);
        for w in &waivers {
            let form = if w.file_wide { "allow-file" } else { "allow" };
            println!(
                "{}:{}: {form}({}) -- {}",
                w.file, w.line, w.lint, w.justification
            );
        }
        println!("bs-lint: {} waiver(s)", waivers.len());
        if problems.is_empty() {
            return ExitCode::SUCCESS;
        }
        for p in &problems {
            eprintln!("{p}");
        }
        eprintln!("bs-lint: {} waiver problem(s)", problems.len());
        return ExitCode::FAILURE;
    }
    let diags = bs_lint::lint_files(&files, &cfg);
    if !quiet {
        for d in &diags {
            println!("{d}");
        }
    }
    if diags.is_empty() {
        if !quiet {
            println!(
                "bs-lint: {} files clean ({} lints enabled)",
                files.len(),
                cfg.lints.values().filter(|on| **on).count()
            );
        }
        ExitCode::SUCCESS
    } else {
        println!("bs-lint: {} violation(s)", diags.len());
        ExitCode::FAILURE
    }
}
