//! The `unsafe-contract` pass: structured, machine-checked SAFETY
//! clauses.
//!
//! Within the crates listed under `[unsafe-contract]` in `lint.toml`,
//! every `unsafe` occurrence (block, fn, impl) must sit next to a
//! comment run containing `SAFETY:` followed by one or more bracketed
//! **claims**:
//!
//! ```text
//! // SAFETY: [bounds `apanel` holds `kc * MR` elements, sliced by the
//! // caller] [isa avx2,fma — dispatched via `kernel_for` after
//! // runtime detection]
//! ```
//!
//! A claim is `[tag detail]` where `tag` is one of [`CLAIM_TAGS`]
//! (bounds source, alignment, aliasing, ISA gate, lifetime, thread
//! sync, register/CSR state, layout). The pass *validates* the claims
//! instead of taking them on faith:
//!
//! - every backticked reference must resolve — to an identifier in the
//!   same file, an identifier anywhere in the workspace, or a string
//!   literal in the same file (asm mnemonics live in strings). A
//!   reference that resolves to nothing is a **stale claim** and fails.
//! - `bounds` claims must point at a visible source of the bound:
//!   either the word "slice" (bounds-checked accesses) or backticked
//!   identifiers that all appear within `ref-window` lines of the
//!   `unsafe` site.
//! - `isa` claims on a `#[target_feature]` function must name exactly
//!   the enabled feature set — no more, no fewer; on other functions
//!   they must reference a workspace function (the dispatch gate).
//! - a `#[target_feature]` function's clause must carry an `isa` claim.
//! - `lifetime` claims must reference something file-local that pins
//!   the lifetime (a barrier, a guard, a field).

use crate::config::Config;
use crate::scan::{FileScan, FnSpan};
use crate::tokens::{TokKind, Token};
use crate::{Diagnostic, Registry};
use std::collections::BTreeSet;

/// The claim vocabulary, in documentation order.
pub const CLAIM_TAGS: &[&str] = &[
    "bounds", "align", "alias", "isa", "lifetime", "sync", "reg", "layout",
];

/// Target features the `isa` tag understands. Claimed features are
/// matched word-wise against `#[target_feature(enable = ...)]` sets.
const ISA_FEATURES: &[&str] = &["avx2", "fma", "avx512f", "neon"];

/// One parsed `[tag detail]` claim.
#[derive(Clone, Debug)]
pub struct Claim {
    pub tag: String,
    pub detail: String,
}

/// A maximal run of comment tokens on adjacent lines, with markers
/// stripped and bodies joined by spaces.
pub struct CommentRun {
    pub start_line: u32,
    pub end_line: u32,
    pub text: String,
}

/// Group a file's comments into adjacent-line runs — a multi-line
/// `// SAFETY:` clause is one logical comment.
pub fn comment_runs(toks: &[Token]) -> Vec<CommentRun> {
    let mut runs: Vec<CommentRun> = Vec::new();
    for t in toks {
        if !t.is_comment() {
            continue;
        }
        let end = t.line + t.text.matches('\n').count() as u32;
        let body = comment_body(t);
        match runs.last_mut() {
            Some(run) if t.line <= run.end_line + 1 => {
                run.end_line = end;
                run.text.push(' ');
                run.text.push_str(&body);
            }
            _ => runs.push(CommentRun {
                start_line: t.line,
                end_line: end,
                text: body,
            }),
        }
    }
    runs
}

/// Strip comment markers, keeping the prose (newlines inside block
/// comments become spaces so claims can wrap).
fn comment_body(t: &Token) -> String {
    let s = match t.kind {
        TokKind::LineComment => t
            .text
            .trim_start_matches('/')
            .trim_start_matches('!')
            .trim(),
        _ => t
            .text
            .trim_start_matches("/*")
            .trim_start_matches(['*', '!'])
            .trim_end_matches("*/")
            .trim(),
    };
    s.replace('\n', " ")
}

/// Parse the bracketed claims following `SAFETY:` in a comment run.
pub fn parse_claims(text: &str) -> Vec<Claim> {
    let Some(pos) = text.find("SAFETY:") else {
        return Vec::new();
    };
    let rest = &text[pos + "SAFETY:".len()..];
    let mut claims = Vec::new();
    let mut chars = rest.char_indices();
    while let Some((i, c)) = chars.next() {
        if c != '[' {
            continue;
        }
        let mut depth = 1usize;
        let mut end = None;
        for (j, c2) in chars.by_ref() {
            match c2 {
                '[' => depth += 1,
                ']' => {
                    depth -= 1;
                    if depth == 0 {
                        end = Some(j);
                        break;
                    }
                }
                _ => {}
            }
        }
        let Some(end) = end else { break };
        let inner = rest[i + 1..end].trim();
        let (tag, detail) = match inner.split_once(char::is_whitespace) {
            Some((t, d)) => (t.to_string(), d.trim().to_string()),
            None => (inner.to_string(), String::new()),
        };
        claims.push(Claim { tag, detail });
    }
    claims
}

/// The backticked references in a claim detail.
fn backtick_refs(detail: &str) -> Vec<&str> {
    let mut refs = Vec::new();
    let mut inside = false;
    for part in detail.split('`') {
        if inside && !part.trim().is_empty() {
            refs.push(part.trim());
        }
        inside = !inside;
    }
    refs
}

/// Identifier-shaped words inside a reference (`kc * MR` → kc, MR).
fn ref_idents(r: &str) -> Vec<&str> {
    r.split(|c: char| !c.is_ascii_alphanumeric() && c != '_')
        .filter(|w| {
            !w.is_empty()
                && w.chars()
                    .next()
                    .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        })
        .collect()
}

/// Words of a claim detail (for feature-name matching).
fn detail_words(detail: &str) -> Vec<&str> {
    detail
        .split(|c: char| !c.is_ascii_alphanumeric() && c != '_')
        .filter(|w| !w.is_empty())
        .collect()
}

/// The innermost function whose body contains token `idx`, falling
/// back to the `fn` declared on the same line (covers the `unsafe fn`
/// keyword itself, which sits just before its own body).
fn assoc_fn(scan: &FileScan, idx: usize, line: u32) -> Option<&FnSpan> {
    let mut best: Option<&FnSpan> = None;
    for f in &scan.fns {
        if let Some((a, b)) = f.body {
            if idx >= a && idx <= b {
                let better = match best.and_then(|bf| bf.body) {
                    Some((ba, bb)) => (b - a) < (bb - ba),
                    None => true,
                };
                if better {
                    best = Some(f);
                }
            }
        }
    }
    best.or_else(|| scan.fns.iter().find(|f| f.line == line))
}

/// Run the pass on one file.
pub fn unsafe_contract(
    file: &str,
    scan: &FileScan,
    cfg: &Config,
    registry: &Registry,
    out: &mut Vec<Diagnostic>,
) {
    if !cfg
        .unsafe_contract_crates
        .iter()
        .any(|c| file.starts_with(c.trim_end_matches('/')))
    {
        return;
    }
    let toks = &scan.toks;
    let runs = comment_runs(toks);
    // File-local resolution corpora.
    let file_idents: BTreeSet<&str> = toks
        .iter()
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.as_str())
        .collect();
    let ident_lines: Vec<(u32, &str)> = toks
        .iter()
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| (t.line, t.text.as_str()))
        .collect();
    let str_corpus: String = toks
        .iter()
        .filter(|t| t.kind == TokKind::Str)
        .map(|t| t.text.as_str())
        .collect::<Vec<_>>()
        .join(" ");

    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || t.text != "unsafe" || scan.in_test(i) {
            continue;
        }
        let window_lo = t.line.saturating_sub(3);
        let window_hi = t.line + 1;
        let clause = runs.iter().find(|r| {
            r.text.contains("SAFETY:") && r.start_line <= window_hi && r.end_line >= window_lo
        });
        let Some(clause) = clause else {
            out.push(diag(
                file,
                t.line,
                "`unsafe` without an adjacent `// SAFETY:` clause; document the invariant \
                 as `[tag detail]` claims",
            ));
            continue;
        };
        let claims = parse_claims(&clause.text);
        if claims.is_empty() {
            out.push(diag(
                file,
                t.line,
                "SAFETY clause carries no structured claims; state the invariant as \
                 `[bounds ...]` / `[isa ...]` / `[sync ...]` claims",
            ));
            continue;
        }
        let assoc = assoc_fn(scan, i, t.line);
        let fn_features: &[String] = assoc.map_or(&[], |f| f.target_features.as_slice());
        if !fn_features.is_empty() && !claims.iter().any(|c| c.tag == "isa") {
            out.push(diag(
                file,
                t.line,
                &format!(
                    "`#[target_feature]` fn needs an `[isa ...]` claim naming its gate \
                     (enabled: {})",
                    fn_features.join(",")
                ),
            ));
        }
        for claim in &claims {
            if let Some(msg) = validate_claim(
                claim,
                t.line,
                fn_features,
                &file_idents,
                &ident_lines,
                &str_corpus,
                registry,
                cfg,
            ) {
                out.push(diag(file, t.line, &msg));
            }
        }
    }
}

fn diag(file: &str, line: u32, msg: &str) -> Diagnostic {
    Diagnostic {
        file: file.to_string(),
        line,
        lint: "unsafe-contract",
        message: msg.to_string(),
    }
}

#[allow(clippy::too_many_arguments)]
fn validate_claim(
    claim: &Claim,
    site_line: u32,
    fn_features: &[String],
    file_idents: &BTreeSet<&str>,
    ident_lines: &[(u32, &str)],
    str_corpus: &str,
    registry: &Registry,
    cfg: &Config,
) -> Option<String> {
    if !CLAIM_TAGS.contains(&claim.tag.as_str()) {
        return Some(format!(
            "unknown claim tag `{}` (expected one of: {})",
            claim.tag,
            CLAIM_TAGS.join(", ")
        ));
    }
    if claim.detail.is_empty() {
        return Some(format!("`[{}]` claim has no detail", claim.tag));
    }
    let refs = backtick_refs(&claim.detail);
    // Every backticked reference must resolve somewhere real.
    for r in &refs {
        for id in ref_idents(r) {
            let resolves =
                file_idents.contains(id) || registry.idents.contains(id) || str_corpus.contains(id);
            if !resolves {
                return Some(format!(
                    "stale `[{}]` claim: `{id}` resolves to nothing in the file, the \
                     workspace, or a file-local string literal",
                    claim.tag
                ));
            }
        }
    }
    match claim.tag.as_str() {
        "bounds" => {
            let via_slice = claim.detail.to_lowercase().contains("slice");
            let near = !refs.is_empty()
                && refs.iter().all(|r| {
                    ref_idents(r).iter().all(|id| {
                        ident_lines
                            .iter()
                            .any(|(l, t)| t == id && l.abs_diff(site_line) <= cfg.ref_window)
                    })
                });
            if !via_slice && !near {
                return Some(format!(
                    "`[bounds]` claim has no visible source: mention bounds-checked \
                     slices or backtick identifiers appearing within {} lines of the \
                     `unsafe` site",
                    cfg.ref_window
                ));
            }
        }
        "isa" => {
            let claimed: BTreeSet<&str> = detail_words(&claim.detail)
                .into_iter()
                .filter(|w| ISA_FEATURES.contains(w))
                .collect();
            if !fn_features.is_empty() {
                let enabled: BTreeSet<&str> = fn_features.iter().map(String::as_str).collect();
                if claimed != enabled {
                    return Some(format!(
                        "`[isa]` claim names features {{{}}} but the fn enables {{{}}}",
                        claimed.into_iter().collect::<Vec<_>>().join(","),
                        enabled.into_iter().collect::<Vec<_>>().join(","),
                    ));
                }
            } else {
                let gated = refs.iter().any(|r| {
                    ref_idents(r)
                        .iter()
                        .any(|id| registry.fn_names.contains(*id))
                });
                if !gated {
                    return Some(
                        "`[isa]` claim outside a `#[target_feature]` fn must backtick the \
                         dispatch-gate function that established the feature"
                            .to_string(),
                    );
                }
            }
        }
        "lifetime" => {
            let local = refs
                .iter()
                .any(|r| ref_idents(r).iter().all(|id| file_idents.contains(id)));
            if !local {
                return Some(
                    "`[lifetime]` claim must backtick the file-local thing that pins the \
                     lifetime (a barrier, guard, or field)"
                        .to_string(),
                );
            }
        }
        _ => {}
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan;
    use crate::tokens::tokenize;

    fn reg(files: &[&str]) -> Registry {
        let mut r = Registry::default();
        for src in files {
            let s = scan(tokenize(src));
            for t in &s.toks {
                if t.kind == TokKind::Ident {
                    r.idents.insert(t.text.clone());
                }
            }
            for f in &s.fns {
                r.fn_names.insert(f.name.clone());
            }
        }
        r
    }

    fn run(src: &str) -> Vec<Diagnostic> {
        let cfg = Config {
            unsafe_contract_crates: vec!["crates/matrix".to_string()],
            ..Config::default()
        };
        let s = scan(tokenize(src));
        let registry = reg(&[src]);
        let mut out = Vec::new();
        unsafe_contract("crates/matrix/src/x.rs", &s, &cfg, &registry, &mut out);
        out
    }

    #[test]
    fn out_of_scope_files_are_skipped() {
        let cfg = Config::default();
        let s = scan(tokenize("fn f() { unsafe { g(); } }"));
        let mut out = Vec::new();
        unsafe_contract(
            "crates/bench/src/x.rs",
            &s,
            &cfg,
            &Registry::default(),
            &mut out,
        );
        assert!(out.is_empty());
    }

    #[test]
    fn missing_clause_and_unstructured_clause_flagged() {
        let d = run("fn f() { unsafe { g(); } }");
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("without an adjacent"));
        let d = run("fn f() {\n    // SAFETY: trust me, it is fine.\n    unsafe { g(); }\n}");
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("no structured claims"));
    }

    #[test]
    fn valid_bounds_claim_near_site_passes() {
        let src = "\
fn f(buf: &[f64], n: usize) {
    let k = n.min(buf.len());
    // SAFETY: [bounds `k` is clamped to `buf` length by the `min` above]
    unsafe { g(buf, k); }
}
";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn stale_reference_fails() {
        let src = "\
fn f() {
    // SAFETY: [bounds `no_such_thing_anywhere` guards the access]
    unsafe { g(); }
}
";
        let d = run(src);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("stale"), "{:?}", d);
    }

    #[test]
    fn unknown_tag_and_empty_detail_fail() {
        let d = run("fn f() {\n    // SAFETY: [vibes all good]\n    unsafe { g(); }\n}");
        assert!(d[0].message.contains("unknown claim tag"));
        let d = run("fn f() {\n    // SAFETY: [sync]\n    unsafe { g(); }\n}");
        assert!(d[0].message.contains("no detail"));
    }

    #[test]
    fn isa_claim_must_match_target_feature_set() {
        let good = "\
// SAFETY: [isa avx2,fma — callers dispatch through `kernel_for`]
#[target_feature(enable = \"avx2\", enable = \"fma\")]
pub unsafe fn kernel_for() {}
";
        assert!(run(good).is_empty(), "{:?}", run(good));
        let wrong = "\
// SAFETY: [isa avx2 — callers dispatch through `kernel_for`]
#[target_feature(enable = \"avx2\", enable = \"fma\")]
pub unsafe fn kernel_for() {}
";
        let d = run(wrong);
        assert!(d.iter().any(|d| d.message.contains("enables")), "{:?}", d);
    }

    #[test]
    fn target_feature_fn_requires_isa_claim() {
        let src = "\
// SAFETY: [bounds all loads go through bounds-checked slices]
#[target_feature(enable = \"neon\")]
pub unsafe fn k() {}
";
        let d = run(src);
        assert!(
            d.iter().any(|d| d.message.contains("needs an `[isa")),
            "{:?}",
            d
        );
    }

    #[test]
    fn isa_claim_outside_target_feature_needs_gate_fn() {
        let src = "\
fn dispatch() {}
fn f() {
    // SAFETY: [isa avx2 — `dispatch` verified the feature at runtime]
    unsafe { g(); }
}
";
        assert!(run(src).is_empty(), "{:?}", run(src));
        let bad = "\
fn f() {
    // SAFETY: [isa avx2 verified somewhere]
    unsafe { g(); }
}
";
        let d = run(bad);
        assert!(
            d.iter().any(|d| d.message.contains("dispatch-gate")),
            "{:?}",
            d
        );
    }

    #[test]
    fn multi_line_clause_parses_as_one_run() {
        let src = "\
fn f(buf: &[f64]) {
    // SAFETY: [bounds every access below indexes `buf` through
    // bounds-checked slice windows] [sync single-threaded section,
    // no other reference exists while `buf` is borrowed]
    unsafe { g(buf); }
}
";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn asm_mnemonics_resolve_via_string_literals() {
        let src = "\
fn f() {
    // SAFETY: [reg `stmxcsr` writes a caller-owned stack slot]
    unsafe { asm(\"stmxcsr {0}\"); }
}
";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn test_regions_exempt() {
        let d = run("#[cfg(test)]\nmod t {\n    fn f() { unsafe { g(); } }\n}\n");
        assert!(d.is_empty(), "{:?}", d);
    }
}
