//! The `lint.toml` manifest, parsed with no dependencies.
//!
//! The format is a deliberately small TOML subset: `[section]`
//! headers, `key = value` pairs, bare list entries, and `#` comments.
//! Sections:
//!
//! - `[lints]` — `lint-name = on|off` switches.
//! - `[library-crates]` — bare directory prefixes (relative to the
//!   workspace root); `no-panic-paths`, `float-eq`, and
//!   `must-use-results` only apply to files under these.
//! - `[hot-paths]` — `path/to/file.rs = fn_a, fn_b` (or `*` for the
//!   whole file): the manifest of allocation-free hot paths checked by
//!   `no-alloc-hot`.
//! - `[must-use-types]` — bare type names whose values must not be
//!   silently dropped; `pub fn`s returning them need `#[must_use]` at
//!   the function or the type declaration.
//! - `[float-eq-allowed]` — bare float literals exempt from `float-eq`
//!   (exact-zero guards like `alpha == 0.0` are how BLAS fast paths
//!   are specified, so `0.0` belongs here).

use std::collections::BTreeMap;

/// Names of the lints the engine implements, in catalog order.
pub const LINT_NAMES: &[&str] = &[
    "no-panic-paths",
    "safety-comment",
    "no-alloc-hot",
    "float-eq",
    "must-use-results",
];

/// One `[hot-paths]` entry: a file plus the functions within it that
/// must stay allocation-free (empty ⇒ `*`, the whole file).
#[derive(Clone, Debug, PartialEq)]
pub struct HotPath {
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// Function names; empty means every non-test function in the file.
    pub fns: Vec<String>,
}

impl HotPath {
    /// Does this entry cover function `name` (or the whole file)?
    pub fn covers(&self, name: &str) -> bool {
        self.fns.is_empty() || self.fns.iter().any(|f| f == name)
    }
}

/// Parsed lint manifest.
#[derive(Clone, Debug)]
pub struct Config {
    /// Lint name → enabled.
    pub lints: BTreeMap<String, bool>,
    /// Directory prefixes of the library crates in scope for the
    /// crate-scoped lints.
    pub library_crates: Vec<String>,
    /// The hot-path manifest.
    pub hot_paths: Vec<HotPath>,
    /// Types whose values must be `#[must_use]`.
    pub must_use_types: Vec<String>,
    /// Float literals exempt from `float-eq` (normalized via `f64`
    /// parsing, so `0.0`, `0.`, and `0.0f64` all match).
    pub float_eq_allowed: Vec<f64>,
}

impl Default for Config {
    /// All lints on, no scope: useful for fixture tests that build
    /// their scope programmatically.
    fn default() -> Self {
        Config {
            lints: LINT_NAMES.iter().map(|n| (n.to_string(), true)).collect(),
            library_crates: Vec::new(),
            hot_paths: Vec::new(),
            must_use_types: Vec::new(),
            float_eq_allowed: vec![0.0],
        }
    }
}

impl Config {
    /// Is `lint` switched on?
    pub fn enabled(&self, lint: &str) -> bool {
        self.lints.get(lint).copied().unwrap_or(false)
    }

    /// Is `file` (workspace-relative, forward slashes) inside one of
    /// the configured library crates?
    pub fn in_library_crate(&self, file: &str) -> bool {
        self.library_crates
            .iter()
            .any(|c| file.starts_with(c.trim_end_matches('/')))
    }

    /// Hot-path entries covering `file`.
    pub fn hot_entries<'a>(&'a self, file: &str) -> Vec<&'a HotPath> {
        self.hot_paths.iter().filter(|h| h.file == file).collect()
    }

    /// Is `lit` (the text of a float literal) one of the exempted
    /// values for `float-eq`?
    pub fn float_literal_allowed(&self, lit: &str) -> bool {
        let cleaned: String = lit
            .trim_end_matches("f64")
            .trim_end_matches("f32")
            .chars()
            .filter(|c| *c != '_')
            .collect();
        match cleaned.parse::<f64>() {
            Ok(v) => self.float_eq_allowed.contains(&v),
            Err(_) => false,
        }
    }

    /// Parse a manifest. Errors carry the 1-based line number.
    pub fn parse(src: &str) -> Result<Config, String> {
        let mut cfg = Config {
            lints: BTreeMap::new(),
            library_crates: Vec::new(),
            hot_paths: Vec::new(),
            must_use_types: Vec::new(),
            float_eq_allowed: Vec::new(),
        };
        let mut section = String::new();
        for (idx, raw) in src.lines().enumerate() {
            let lineno = idx + 1;
            let line = match raw.find('#') {
                Some(p) => &raw[..p],
                None => raw,
            }
            .trim();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                section = name.trim().to_string();
                match section.as_str() {
                    "lints" | "library-crates" | "hot-paths" | "must-use-types"
                    | "float-eq-allowed" => {}
                    other => return Err(format!("line {lineno}: unknown section [{other}]")),
                }
                continue;
            }
            let (key, value) = match line.split_once('=') {
                Some((k, v)) => (k.trim(), Some(v.trim())),
                None => (line, None),
            };
            match section.as_str() {
                "lints" => {
                    if !LINT_NAMES.contains(&key) {
                        return Err(format!("line {lineno}: unknown lint `{key}`"));
                    }
                    let on = match value {
                        Some("on") | Some("true") => true,
                        Some("off") | Some("false") => false,
                        _ => {
                            return Err(format!(
                                "line {lineno}: expected `{key} = on|off`, got `{raw}`"
                            ))
                        }
                    };
                    cfg.lints.insert(key.to_string(), on);
                }
                "library-crates" => {
                    if value.is_some() {
                        return Err(format!("line {lineno}: [library-crates] takes bare paths"));
                    }
                    cfg.library_crates.push(key.to_string());
                }
                "hot-paths" => {
                    let Some(v) = value else {
                        return Err(format!(
                            "line {lineno}: [hot-paths] entries are `file.rs = fn, fn` or `file.rs = *`"
                        ));
                    };
                    let fns = if v == "*" {
                        Vec::new()
                    } else {
                        let fns: Vec<String> = v
                            .split(',')
                            .map(|f| f.trim().to_string())
                            .filter(|f| !f.is_empty())
                            .collect();
                        if fns.is_empty() {
                            return Err(format!("line {lineno}: empty function list for `{key}`"));
                        }
                        fns
                    };
                    cfg.hot_paths.push(HotPath {
                        file: key.to_string(),
                        fns,
                    });
                }
                "must-use-types" => {
                    if value.is_some() {
                        return Err(format!("line {lineno}: [must-use-types] takes bare names"));
                    }
                    cfg.must_use_types.push(key.to_string());
                }
                "float-eq-allowed" => {
                    if value.is_some() {
                        return Err(format!(
                            "line {lineno}: [float-eq-allowed] takes bare float literals"
                        ));
                    }
                    let v = key
                        .parse::<f64>()
                        .map_err(|_| format!("line {lineno}: `{key}` is not a float literal"))?;
                    cfg.float_eq_allowed.push(v);
                }
                "" => return Err(format!("line {lineno}: entry before any [section]")),
                _ => unreachable!("section validated at header"),
            }
        }
        Ok(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# comment
[lints]
no-panic-paths = on
float-eq = off

[library-crates]
crates/core
crates/matrix

[hot-paths]
crates/core/src/eliminate.rs = eliminate_spd, eliminate_indefinite
crates/matrix/src/blas3.rs = *

[must-use-types]
FactorPlan

[float-eq-allowed]
0.0
";

    #[test]
    fn parses_all_sections() {
        let cfg = Config::parse(SAMPLE).unwrap();
        assert!(cfg.enabled("no-panic-paths"));
        assert!(!cfg.enabled("float-eq"));
        assert!(!cfg.enabled("no-alloc-hot"), "unlisted lints default off");
        assert!(cfg.in_library_crate("crates/core/src/lib.rs"));
        assert!(!cfg.in_library_crate("crates/bench/src/lib.rs"));
        let hot = cfg.hot_entries("crates/core/src/eliminate.rs");
        assert_eq!(hot.len(), 1);
        assert!(hot[0].covers("eliminate_spd"));
        assert!(!hot[0].covers("retiled"));
        assert!(cfg.hot_entries("crates/matrix/src/blas3.rs")[0].covers("anything"));
        assert_eq!(cfg.must_use_types, vec!["FactorPlan"]);
        assert!(cfg.float_literal_allowed("0.0"));
        assert!(cfg.float_literal_allowed("0.0f64"));
        assert!(!cfg.float_literal_allowed("1.0"));
    }

    #[test]
    fn rejects_unknown_lint_and_section() {
        assert!(Config::parse("[lints]\nbogus = on\n").is_err());
        assert!(Config::parse("[wat]\n").is_err());
        assert!(Config::parse("stray-entry\n").is_err());
    }

    #[test]
    fn rejects_malformed_values() {
        assert!(Config::parse("[lints]\nfloat-eq = maybe\n").is_err());
        assert!(Config::parse("[hot-paths]\nfile.rs\n").is_err());
        assert!(Config::parse("[float-eq-allowed]\nnot-a-float\n").is_err());
    }
}
