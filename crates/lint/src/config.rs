//! The `lint.toml` manifest, parsed with no dependencies.
//!
//! The format is a deliberately small TOML subset: `[section]`
//! headers, `key = value` pairs, bare list entries, and `#` comments.
//! Sections:
//!
//! - `[lints]` — `lint-name = on|off` switches.
//! - `[library-crates]` — bare directory prefixes (relative to the
//!   workspace root); `no-panic-paths`, `float-eq`, and
//!   `must-use-results` only apply to files under these.
//! - `[hot-paths]` — `path/to/file.rs = fn_a, fn_b` (or `*` for the
//!   whole file): the manifest of allocation-free hot paths checked by
//!   `no-alloc-hot`.
//! - `[must-use-types]` — bare type names whose values must not be
//!   silently dropped; `pub fn`s returning them need `#[must_use]` at
//!   the function or the type declaration.
//! - `[float-eq-allowed]` — bare float literals exempt from `float-eq`
//!   (exact-zero guards like `alpha == 0.0` are how BLAS fast paths
//!   are specified, so `0.0` belongs here).

use std::collections::BTreeMap;

/// Names of the lints the engine implements, in catalog order.
pub const LINT_NAMES: &[&str] = &[
    "no-panic-paths",
    "safety-comment",
    "no-alloc-hot",
    "float-eq",
    "must-use-results",
    "unsafe-contract",
    "atomics-manifest",
    "hot-path-coverage",
];

/// One declared atomic location in the `[atomics]` concurrency
/// manifest: the receiver name, the memory orderings its operations may
/// use, and whether it is a **claim counter** (a `fetch_add(1, _)`
/// whose result must be bounds-checked before use — the pattern the
/// strip-disjointness argument of the worker pool rests on).
#[derive(Clone, Debug, PartialEq)]
pub struct AtomicDecl {
    /// Receiver identifier as it appears at the call site
    /// (`FLUSH_GUARDS`, `next`, ...).
    pub name: String,
    /// Permitted orderings, lowercase (`relaxed`, `acquire`, `release`,
    /// `acqrel`, `seqcst`).
    pub orderings: Vec<String>,
    /// Declared as a claim counter.
    pub claim: bool,
}

/// One `[hot-paths]` entry: a file plus the functions within it that
/// must stay allocation-free (empty ⇒ `*`, the whole file).
#[derive(Clone, Debug, PartialEq)]
pub struct HotPath {
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// Function names; empty means every non-test function in the file.
    pub fns: Vec<String>,
}

impl HotPath {
    /// Does this entry cover function `name` (or the whole file)?
    pub fn covers(&self, name: &str) -> bool {
        self.fns.is_empty() || self.fns.iter().any(|f| f == name)
    }
}

/// Parsed lint manifest.
#[derive(Clone, Debug)]
pub struct Config {
    /// Lint name → enabled.
    pub lints: BTreeMap<String, bool>,
    /// Directory prefixes of the library crates in scope for the
    /// crate-scoped lints.
    pub library_crates: Vec<String>,
    /// The hot-path manifest.
    pub hot_paths: Vec<HotPath>,
    /// Types whose values must be `#[must_use]`.
    pub must_use_types: Vec<String>,
    /// Float literals exempt from `float-eq` (normalized via `f64`
    /// parsing, so `0.0`, `0.`, and `0.0f64` all match).
    pub float_eq_allowed: Vec<f64>,
    /// Directory prefixes whose `unsafe` occurrences must carry a
    /// structured, validated SAFETY clause (`[unsafe-contract]`).
    pub unsafe_contract_crates: Vec<String>,
    /// Line radius around an `unsafe` site within which a `bounds`
    /// claim's backticked identifiers must appear
    /// (`ref-window = N` in `[unsafe-contract]`; default 25).
    pub ref_window: u32,
    /// The concurrency manifest: file → declared atomic locations
    /// (`[atomics]`). Files listed here get their atomic ops checked;
    /// files in `unsafe_contract_crates` with atomic ops but no entry
    /// are violations.
    pub atomics: BTreeMap<String, Vec<AtomicDecl>>,
    /// Raw-pointer declarations that may exist per file
    /// (`[raw-pointers]`): binding/field names holding `*const`/`*mut`
    /// values that cross the dispatch boundary.
    pub raw_pointers: BTreeMap<String, Vec<String>>,
    /// Directories every file of which must appear in `[hot-paths]` or
    /// `[hot-path-exempt]` (`[hot-path-dirs]`).
    pub hot_path_dirs: Vec<String>,
    /// Files exempted from hot-path-dir coverage, with a justification
    /// (`[hot-path-exempt]`, `file.rs = reason`).
    pub hot_path_exempt: BTreeMap<String, String>,
}

impl Default for Config {
    /// All lints on, no scope: useful for fixture tests that build
    /// their scope programmatically.
    fn default() -> Self {
        Config {
            lints: LINT_NAMES.iter().map(|n| (n.to_string(), true)).collect(),
            library_crates: Vec::new(),
            hot_paths: Vec::new(),
            must_use_types: Vec::new(),
            float_eq_allowed: vec![0.0],
            unsafe_contract_crates: Vec::new(),
            ref_window: 25,
            atomics: BTreeMap::new(),
            raw_pointers: BTreeMap::new(),
            hot_path_dirs: Vec::new(),
            hot_path_exempt: BTreeMap::new(),
        }
    }
}

impl Config {
    /// Is `lint` switched on?
    pub fn enabled(&self, lint: &str) -> bool {
        self.lints.get(lint).copied().unwrap_or(false)
    }

    /// Is `file` (workspace-relative, forward slashes) inside one of
    /// the configured library crates?
    pub fn in_library_crate(&self, file: &str) -> bool {
        self.library_crates
            .iter()
            .any(|c| file.starts_with(c.trim_end_matches('/')))
    }

    /// Hot-path entries covering `file`.
    pub fn hot_entries<'a>(&'a self, file: &str) -> Vec<&'a HotPath> {
        self.hot_paths.iter().filter(|h| h.file == file).collect()
    }

    /// Is `lit` (the text of a float literal) one of the exempted
    /// values for `float-eq`?
    pub fn float_literal_allowed(&self, lit: &str) -> bool {
        let cleaned: String = lit
            .trim_end_matches("f64")
            .trim_end_matches("f32")
            .chars()
            .filter(|c| *c != '_')
            .collect();
        match cleaned.parse::<f64>() {
            Ok(v) => self.float_eq_allowed.contains(&v),
            Err(_) => false,
        }
    }

    /// Parse a manifest. Errors carry the 1-based line number.
    pub fn parse(src: &str) -> Result<Config, String> {
        let mut cfg = Config {
            lints: BTreeMap::new(),
            library_crates: Vec::new(),
            hot_paths: Vec::new(),
            must_use_types: Vec::new(),
            float_eq_allowed: Vec::new(),
            unsafe_contract_crates: Vec::new(),
            ref_window: 25,
            atomics: BTreeMap::new(),
            raw_pointers: BTreeMap::new(),
            hot_path_dirs: Vec::new(),
            hot_path_exempt: BTreeMap::new(),
        };
        let mut section = String::new();
        for (idx, raw) in src.lines().enumerate() {
            let lineno = idx + 1;
            let line = match raw.find('#') {
                Some(p) => &raw[..p],
                None => raw,
            }
            .trim();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                section = name.trim().to_string();
                match section.as_str() {
                    "lints" | "library-crates" | "hot-paths" | "must-use-types"
                    | "float-eq-allowed" | "unsafe-contract" | "atomics" | "raw-pointers"
                    | "hot-path-dirs" | "hot-path-exempt" => {}
                    other => return Err(format!("line {lineno}: unknown section [{other}]")),
                }
                continue;
            }
            let (key, value) = match line.split_once('=') {
                Some((k, v)) => (k.trim(), Some(v.trim())),
                None => (line, None),
            };
            match section.as_str() {
                "lints" => {
                    if !LINT_NAMES.contains(&key) {
                        return Err(format!("line {lineno}: unknown lint `{key}`"));
                    }
                    let on = match value {
                        Some("on") | Some("true") => true,
                        Some("off") | Some("false") => false,
                        _ => {
                            return Err(format!(
                                "line {lineno}: expected `{key} = on|off`, got `{raw}`"
                            ))
                        }
                    };
                    cfg.lints.insert(key.to_string(), on);
                }
                "library-crates" => {
                    if value.is_some() {
                        return Err(format!("line {lineno}: [library-crates] takes bare paths"));
                    }
                    cfg.library_crates.push(key.to_string());
                }
                "hot-paths" => {
                    let Some(v) = value else {
                        return Err(format!(
                            "line {lineno}: [hot-paths] entries are `file.rs = fn, fn` or `file.rs = *`"
                        ));
                    };
                    let fns = if v == "*" {
                        Vec::new()
                    } else {
                        let fns: Vec<String> = v
                            .split(',')
                            .map(|f| f.trim().to_string())
                            .filter(|f| !f.is_empty())
                            .collect();
                        if fns.is_empty() {
                            return Err(format!("line {lineno}: empty function list for `{key}`"));
                        }
                        fns
                    };
                    cfg.hot_paths.push(HotPath {
                        file: key.to_string(),
                        fns,
                    });
                }
                "must-use-types" => {
                    if value.is_some() {
                        return Err(format!("line {lineno}: [must-use-types] takes bare names"));
                    }
                    cfg.must_use_types.push(key.to_string());
                }
                "float-eq-allowed" => {
                    if value.is_some() {
                        return Err(format!(
                            "line {lineno}: [float-eq-allowed] takes bare float literals"
                        ));
                    }
                    let v = key
                        .parse::<f64>()
                        .map_err(|_| format!("line {lineno}: `{key}` is not a float literal"))?;
                    cfg.float_eq_allowed.push(v);
                }
                "unsafe-contract" => match (key, value) {
                    ("ref-window", Some(v)) => {
                        cfg.ref_window = v.parse::<u32>().map_err(|_| {
                            format!("line {lineno}: `ref-window` wants a line count, got `{v}`")
                        })?;
                    }
                    (path, None) => cfg.unsafe_contract_crates.push(path.to_string()),
                    _ => {
                        return Err(format!(
                            "line {lineno}: [unsafe-contract] takes bare crate paths or `ref-window = N`"
                        ))
                    }
                },
                "atomics" => {
                    let Some(v) = value else {
                        return Err(format!(
                            "line {lineno}: [atomics] entries are `file.rs = NAME:ordering[+ordering|+claim], ...`"
                        ));
                    };
                    let mut decls = Vec::new();
                    for item in v.split(',').map(str::trim).filter(|s| !s.is_empty()) {
                        let Some((name, spec)) = item.split_once(':') else {
                            return Err(format!(
                                "line {lineno}: atomic decl `{item}` missing `:ordering`"
                            ));
                        };
                        let mut orderings = Vec::new();
                        let mut claim = false;
                        for part in spec.split('+').map(str::trim) {
                            match part {
                                "relaxed" | "acquire" | "release" | "acqrel" | "seqcst" => {
                                    orderings.push(part.to_string())
                                }
                                "claim" => claim = true,
                                other => {
                                    return Err(format!(
                                        "line {lineno}: unknown ordering/role `{other}` in `{item}`"
                                    ))
                                }
                            }
                        }
                        if orderings.is_empty() {
                            return Err(format!(
                                "line {lineno}: atomic decl `{item}` permits no ordering"
                            ));
                        }
                        decls.push(AtomicDecl {
                            name: name.trim().to_string(),
                            orderings,
                            claim,
                        });
                    }
                    if decls.is_empty() {
                        return Err(format!("line {lineno}: empty atomic decl list for `{key}`"));
                    }
                    cfg.atomics.insert(key.to_string(), decls);
                }
                "raw-pointers" => {
                    let Some(v) = value else {
                        return Err(format!(
                            "line {lineno}: [raw-pointers] entries are `file.rs = name, name`"
                        ));
                    };
                    let names: Vec<String> = v
                        .split(',')
                        .map(|s| s.trim().to_string())
                        .filter(|s| !s.is_empty())
                        .collect();
                    if names.is_empty() {
                        return Err(format!("line {lineno}: empty raw-pointer list for `{key}`"));
                    }
                    cfg.raw_pointers.insert(key.to_string(), names);
                }
                "hot-path-dirs" => {
                    if value.is_some() {
                        return Err(format!("line {lineno}: [hot-path-dirs] takes bare paths"));
                    }
                    cfg.hot_path_dirs.push(key.to_string());
                }
                "hot-path-exempt" => {
                    let Some(v) = value else {
                        return Err(format!(
                            "line {lineno}: [hot-path-exempt] entries are `file.rs = justification`"
                        ));
                    };
                    if v.len() < 3 {
                        return Err(format!(
                            "line {lineno}: hot-path exemption for `{key}` needs a justification"
                        ));
                    }
                    cfg.hot_path_exempt.insert(key.to_string(), v.to_string());
                }
                "" => return Err(format!("line {lineno}: entry before any [section]")),
                _ => unreachable!("section validated at header"),
            }
        }
        Ok(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# comment
[lints]
no-panic-paths = on
float-eq = off

[library-crates]
crates/core
crates/matrix

[hot-paths]
crates/core/src/eliminate.rs = eliminate_spd, eliminate_indefinite
crates/matrix/src/blas3.rs = *

[must-use-types]
FactorPlan

[float-eq-allowed]
0.0
";

    #[test]
    fn parses_all_sections() {
        let cfg = Config::parse(SAMPLE).unwrap();
        assert!(cfg.enabled("no-panic-paths"));
        assert!(!cfg.enabled("float-eq"));
        assert!(!cfg.enabled("no-alloc-hot"), "unlisted lints default off");
        assert!(cfg.in_library_crate("crates/core/src/lib.rs"));
        assert!(!cfg.in_library_crate("crates/bench/src/lib.rs"));
        let hot = cfg.hot_entries("crates/core/src/eliminate.rs");
        assert_eq!(hot.len(), 1);
        assert!(hot[0].covers("eliminate_spd"));
        assert!(!hot[0].covers("retiled"));
        assert!(cfg.hot_entries("crates/matrix/src/blas3.rs")[0].covers("anything"));
        assert_eq!(cfg.must_use_types, vec!["FactorPlan"]);
        assert!(cfg.float_literal_allowed("0.0"));
        assert!(cfg.float_literal_allowed("0.0f64"));
        assert!(!cfg.float_literal_allowed("1.0"));
    }

    const AUDIT_SAMPLE: &str = "\
[unsafe-contract]
crates/matrix
crates/core
ref-window = 30

[atomics]
crates/matrix/src/par.rs = FLUSH_GUARDS:relaxed, next:relaxed+claim
crates/matrix/src/kernel/mod.rs = OVERRIDE:relaxed

[raw-pointers]
crates/matrix/src/par.rs = f, next, fp

[hot-path-dirs]
crates/matrix/src/kernel

[hot-path-exempt]
crates/matrix/src/kernel/tuning.rs = one-shot sysfs probe, not on the solve path
";

    #[test]
    fn parses_audit_sections() {
        let cfg = Config::parse(AUDIT_SAMPLE).unwrap();
        assert_eq!(
            cfg.unsafe_contract_crates,
            vec!["crates/matrix", "crates/core"]
        );
        assert_eq!(cfg.ref_window, 30);
        let par = &cfg.atomics["crates/matrix/src/par.rs"];
        assert_eq!(par.len(), 2);
        assert_eq!(par[0].name, "FLUSH_GUARDS");
        assert_eq!(par[0].orderings, vec!["relaxed"]);
        assert!(!par[0].claim);
        assert_eq!(par[1].name, "next");
        assert!(par[1].claim);
        assert_eq!(
            cfg.raw_pointers["crates/matrix/src/par.rs"],
            vec!["f", "next", "fp"]
        );
        assert_eq!(cfg.hot_path_dirs, vec!["crates/matrix/src/kernel"]);
        assert!(cfg.hot_path_exempt["crates/matrix/src/kernel/tuning.rs"].contains("sysfs"));
    }

    #[test]
    fn rejects_malformed_audit_entries() {
        assert!(
            Config::parse("[atomics]\nf.rs = NAME\n").is_err(),
            "no ordering"
        );
        assert!(
            Config::parse("[atomics]\nf.rs = NAME:sequential\n").is_err(),
            "bad ordering name"
        );
        assert!(
            Config::parse("[atomics]\nf.rs = NAME:claim\n").is_err(),
            "claim alone permits no ordering"
        );
        assert!(Config::parse("[raw-pointers]\nf.rs\n").is_err());
        assert!(Config::parse("[hot-path-dirs]\ndir = x\n").is_err());
        assert!(Config::parse("[hot-path-exempt]\nf.rs\n").is_err());
        assert!(
            Config::parse("[unsafe-contract]\nref-window = lots\n").is_err(),
            "ref-window wants a number"
        );
    }

    #[test]
    fn rejects_unknown_lint_and_section() {
        assert!(Config::parse("[lints]\nbogus = on\n").is_err());
        assert!(Config::parse("[wat]\n").is_err());
        assert!(Config::parse("stray-entry\n").is_err());
    }

    #[test]
    fn rejects_malformed_values() {
        assert!(Config::parse("[lints]\nfloat-eq = maybe\n").is_err());
        assert!(Config::parse("[hot-paths]\nfile.rs\n").is_err());
        assert!(Config::parse("[float-eq-allowed]\nnot-a-float\n").is_err());
    }
}
