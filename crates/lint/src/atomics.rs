//! The `atomics-manifest` pass: a per-file model of atomic operations
//! and raw-pointer escapes, checked against the concurrency manifest
//! declared in `lint.toml`.
//!
//! `[atomics]` declares, per file, which atomic locations exist, which
//! memory orderings their operations may use, and which are **claim
//! counters** — `fetch_add` indices whose result must be bounds-checked
//! before use (the pattern the worker pool's strip-disjointness
//! argument rests on: a strip index claimed exactly once, discarded
//! when past the end). `[raw-pointers]` declares the named
//! `*const`/`*mut` bindings allowed to exist (the job pointers crossing
//! the dispatch boundary).
//!
//! The pass fails on:
//! - an atomic operation on an undeclared location (or in a scoped
//!   file with no `[atomics]` entry at all),
//! - an `Ordering` stronger or different than declared,
//! - a declared claim counter with no bounds-checked `fetch_add` in
//!   sight,
//! - a raw-pointer binding not declared in `[raw-pointers]`,
//! - **stale manifest entries** — declarations matching nothing in the
//!   file, which would let the manifest drift from the code.
//!
//! Test regions are exempt: tests may hammer atomics freely.

use crate::config::Config;
use crate::scan::FileScan;
use crate::tokens::{TokKind, Token};
use crate::Diagnostic;

/// Method names that perform an atomic operation when called with an
/// `Ordering` argument.
const ATOMIC_OPS: &[&str] = &[
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_or",
    "fetch_and",
    "fetch_xor",
    "compare_exchange",
    "compare_exchange_weak",
    "fetch_update",
];

/// `Ordering::X` variant → manifest spelling.
const ORDERINGS: &[(&str, &str)] = &[
    ("Relaxed", "relaxed"),
    ("Acquire", "acquire"),
    ("Release", "release"),
    ("AcqRel", "acqrel"),
    ("SeqCst", "seqcst"),
];

/// Comparison operators accepted as the bounds check on a claimed
/// index.
const CLAIM_CHECKS: &[&str] = &[">=", "<", ">", "<="];

/// How far (in tokens) past a `fetch_add` the bounds check must appear.
const CLAIM_CHECK_WINDOW: usize = 16;

fn in_scope(file: &str, cfg: &Config) -> bool {
    cfg.unsafe_contract_crates
        .iter()
        .any(|c| file.starts_with(c.trim_end_matches('/')))
}

fn is_punct(t: Option<&Token>, s: &str) -> bool {
    matches!(t, Some(t) if t.kind == TokKind::Punct && t.text == s)
}

/// Walk left from the `.` of a method call to the receiver identifier,
/// skipping one balanced `(...)`/`[...]` group (`hits[i].fetch_add`).
fn receiver(toks: &[Token], dot_idx: usize) -> Option<String> {
    let mut j = dot_idx;
    loop {
        if j == 0 {
            return None;
        }
        j -= 1;
        let t = &toks[j];
        match t.kind {
            TokKind::Punct if t.text == ")" || t.text == "]" => {
                let (open, close) = if t.text == ")" {
                    ("(", ")")
                } else {
                    ("[", "]")
                };
                let mut depth = 1usize;
                while depth > 0 {
                    if j == 0 {
                        return None;
                    }
                    j -= 1;
                    let u = &toks[j];
                    if u.kind == TokKind::Punct {
                        if u.text == close {
                            depth += 1;
                        } else if u.text == open {
                            depth -= 1;
                        }
                    }
                }
            }
            TokKind::Ident => return Some(t.text.clone()),
            _ => return None,
        }
    }
}

/// One atomic operation found in the token stream.
struct AtomicOp {
    idx: usize,
    line: u32,
    method: String,
    recv: Option<String>,
    orderings: Vec<&'static str>,
}

/// Find the non-test atomic operations in a file.
fn find_ops(scan: &FileScan) -> Vec<AtomicOp> {
    let toks = &scan.toks;
    let mut ops = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident
            || !ATOMIC_OPS.contains(&t.text.as_str())
            || scan.in_test(i)
            || !is_punct(i.checked_sub(1).and_then(|j| toks.get(j)), ".")
            || !is_punct(toks.get(i + 1), "(")
        {
            continue;
        }
        // Scan the argument list for Ordering variants; a call without
        // one is an ordinary method, not an atomic op.
        let mut orderings: Vec<&'static str> = Vec::new();
        let mut depth = 0usize;
        for a in &toks[i + 1..] {
            if a.kind == TokKind::Punct {
                match a.text.as_str() {
                    "(" => depth += 1,
                    ")" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
            } else if a.kind == TokKind::Ident {
                if let Some((_, m)) = ORDERINGS.iter().find(|(v, _)| *v == a.text) {
                    orderings.push(m);
                }
            }
        }
        if orderings.is_empty() {
            continue;
        }
        ops.push(AtomicOp {
            idx: i,
            line: t.line,
            method: t.text.clone(),
            recv: receiver(toks, i - 1),
            orderings,
        });
    }
    ops
}

/// Check the atomic-op model against the `[atomics]` manifest.
pub fn atomics_manifest(file: &str, scan: &FileScan, cfg: &Config, out: &mut Vec<Diagnostic>) {
    let decls = cfg.atomics.get(file);
    if !in_scope(file, cfg) && decls.is_none() {
        return;
    }
    let ops = find_ops(scan);
    let decls = match decls {
        Some(d) => d,
        None => {
            if let Some(op) = ops.first() {
                out.push(diag(
                    file,
                    op.line,
                    format!(
                        "atomic `{}` but `{file}` has no [atomics] entry in lint.toml; \
                         declare its locations and orderings",
                        op.method
                    ),
                ));
            }
            return;
        }
    };
    let mut used = vec![false; decls.len()];
    for op in &ops {
        let Some(recv) = &op.recv else {
            out.push(diag(
                file,
                op.line,
                format!(
                    "cannot resolve the receiver of atomic `{}`; bind the location to a \
                     name declared in [atomics]",
                    op.method
                ),
            ));
            continue;
        };
        let Some(pos) = decls.iter().position(|d| &d.name == recv) else {
            out.push(diag(
                file,
                op.line,
                format!("atomic location `{recv}` is not declared in [atomics] for this file"),
            ));
            continue;
        };
        used[pos] = true;
        for ord in &op.orderings {
            if !decls[pos].orderings.iter().any(|o| o == ord) {
                out.push(diag(
                    file,
                    op.line,
                    format!(
                        "`{recv}.{}` uses Ordering `{ord}` but the manifest permits only \
                         {{{}}}",
                        op.method,
                        decls[pos].orderings.join(", ")
                    ),
                ));
            }
        }
    }
    // Claim counters must exhibit the bounds-checked fetch_add pattern.
    for (pos, decl) in decls.iter().enumerate() {
        if !decl.claim || !used[pos] {
            continue;
        }
        let claimed = ops.iter().any(|op| {
            op.recv.as_deref() == Some(decl.name.as_str())
                && op.method == "fetch_add"
                && scan.toks[op.idx..]
                    .iter()
                    .take(CLAIM_CHECK_WINDOW)
                    .any(|t| t.kind == TokKind::Punct && CLAIM_CHECKS.contains(&t.text.as_str()))
        });
        if !claimed {
            let line = ops
                .iter()
                .find(|op| op.recv.as_deref() == Some(decl.name.as_str()))
                .map_or(1, |op| op.line);
            out.push(diag(
                file,
                line,
                format!(
                    "`{}` is declared as a claim counter but no `fetch_add` result is \
                     bounds-checked within {CLAIM_CHECK_WINDOW} tokens",
                    decl.name
                ),
            ));
        }
    }
    // Stale declarations drift the manifest away from the code.
    for (pos, decl) in decls.iter().enumerate() {
        if !used[pos] {
            out.push(diag(
                file,
                1,
                format!(
                    "`{}` is declared in [atomics] but the file performs no atomic \
                     operation on it — stale manifest entry",
                    decl.name
                ),
            ));
        }
    }
}

/// Check `*const`/`*mut` bindings against the `[raw-pointers]`
/// manifest.
pub fn raw_pointers(file: &str, scan: &FileScan, cfg: &Config, out: &mut Vec<Diagnostic>) {
    let declared = cfg.raw_pointers.get(file);
    if !in_scope(file, cfg) && declared.is_none() {
        return;
    }
    let toks = &scan.toks;
    let empty = Vec::new();
    let declared = declared.unwrap_or(&empty);
    let mut used = vec![false; declared.len()];
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Punct || t.text != "*" || scan.in_test(i) {
            continue;
        }
        let next = toks.get(i + 1);
        let is_ptr_ty = matches!(next, Some(n) if n.kind == TokKind::Ident && (n.text == "const" || n.text == "mut"));
        if !is_ptr_ty {
            continue;
        }
        // Name the binding: the `ident :` immediately left of the type.
        let prev = i.checked_sub(1).and_then(|j| toks.get(j));
        let prev2 = i.checked_sub(2).and_then(|j| toks.get(j));
        let name = match (prev2, prev) {
            (Some(n), Some(c))
                if n.kind == TokKind::Ident && c.kind == TokKind::Punct && c.text == ":" =>
            {
                Some(n.text.as_str())
            }
            _ => None,
        };
        let Some(name) = name else {
            out.push(diag(
                file,
                t.line,
                format!(
                    "raw `*{}` in an unnamed position (cast or bare type); bind it to a \
                     named field or local declared in [raw-pointers]",
                    next.map_or("", |n| n.text.as_str())
                ),
            ));
            continue;
        };
        match declared.iter().position(|d| d == name) {
            Some(pos) => used[pos] = true,
            None => out.push(diag(
                file,
                t.line,
                format!("raw pointer `{name}` is not declared in [raw-pointers] for this file"),
            )),
        }
    }
    for (pos, name) in declared.iter().enumerate() {
        if !used[pos] {
            out.push(diag(
                file,
                1,
                format!(
                    "`{name}` is declared in [raw-pointers] but the file binds no raw \
                     pointer of that name — stale manifest entry"
                ),
            ));
        }
    }
}

fn diag(file: &str, line: u32, message: String) -> Diagnostic {
    Diagnostic {
        file: file.to_string(),
        line,
        lint: "atomics-manifest",
        message,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AtomicDecl;
    use crate::scan::scan;
    use crate::tokens::tokenize;

    const FILE: &str = "crates/matrix/src/x.rs";

    fn cfg_with(decls: Vec<AtomicDecl>, ptrs: Vec<&str>) -> Config {
        let mut cfg = Config {
            unsafe_contract_crates: vec!["crates/matrix".to_string()],
            ..Config::default()
        };
        if !decls.is_empty() {
            cfg.atomics.insert(FILE.to_string(), decls);
        }
        if !ptrs.is_empty() {
            cfg.raw_pointers.insert(
                FILE.to_string(),
                ptrs.iter().map(|s| s.to_string()).collect(),
            );
        }
        cfg
    }

    fn decl(name: &str, orderings: &[&str], claim: bool) -> AtomicDecl {
        AtomicDecl {
            name: name.to_string(),
            orderings: orderings.iter().map(|s| s.to_string()).collect(),
            claim,
        }
    }

    fn run(src: &str, cfg: &Config) -> Vec<Diagnostic> {
        let s = scan(tokenize(src));
        let mut out = Vec::new();
        atomics_manifest(FILE, &s, cfg, &mut out);
        raw_pointers(FILE, &s, cfg, &mut out);
        out
    }

    #[test]
    fn declared_ops_pass_undeclared_fail() {
        let src =
            "fn f() { GUARDS.fetch_add(1, Ordering::Relaxed); OTHER.load(Ordering::Relaxed); }";
        let cfg = cfg_with(vec![decl("GUARDS", &["relaxed"], false)], vec![]);
        let d = run(src, &cfg);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("OTHER"));
    }

    #[test]
    fn missing_manifest_entry_flagged_in_scope() {
        let src = "fn f() { X.store(1, Ordering::Relaxed); }";
        let cfg = cfg_with(vec![], vec![]);
        let d = run(src, &cfg);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("no [atomics] entry"));
    }

    #[test]
    fn stronger_ordering_than_declared_fails() {
        let src = "fn f() { X.load(Ordering::SeqCst); }";
        let cfg = cfg_with(vec![decl("X", &["relaxed"], false)], vec![]);
        let d = run(src, &cfg);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("seqcst"));
    }

    #[test]
    fn claim_counter_requires_bounds_check() {
        let good = "fn f(n: usize) { let i = next.fetch_add(1, Ordering::Relaxed); if i >= n { return; } }";
        let cfg = cfg_with(vec![decl("next", &["relaxed"], true)], vec![]);
        assert!(run(good, &cfg).is_empty(), "{:?}", run(good, &cfg));
        let bad = "fn f() { let i = next.fetch_add(1, Ordering::Relaxed); use_it(i); }";
        let d = run(bad, &cfg);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("claim counter"));
    }

    #[test]
    fn stale_declarations_flagged() {
        let cfg = cfg_with(vec![decl("GHOST", &["relaxed"], false)], vec!["phantom"]);
        let d = run("fn f() {}", &cfg);
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d.iter().all(|d| d.message.contains("stale")));
    }

    #[test]
    fn test_regions_exempt() {
        let src = "#[cfg(test)] mod t { fn f() { X.load(Ordering::SeqCst); } }";
        let cfg = cfg_with(vec![], vec![]);
        assert!(run(src, &cfg).is_empty());
    }

    #[test]
    fn raw_pointer_declared_and_undeclared() {
        let src = "struct J { f: *const u8 }\nfn g() { let q: *mut f64 = p; }\n";
        let cfg = cfg_with(vec![], vec!["f"]);
        let d = run(src, &cfg);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("`q`"));
    }

    #[test]
    fn multiplication_is_not_a_pointer() {
        let cfg = cfg_with(vec![], vec![]);
        assert!(run("fn f(a: f64, b: f64) -> f64 { a * b }", &cfg).is_empty());
    }

    #[test]
    fn indexed_receiver_resolves() {
        let src = "fn f() { hits[i].fetch_add(1, Ordering::Relaxed); }";
        let cfg = cfg_with(vec![decl("hits", &["relaxed"], false)], vec![]);
        assert!(run(src, &cfg).is_empty(), "{:?}", run(src, &cfg));
    }
}
