//! Fixture: allocations inside the manifest-listed hot function.
//! Expected `no-alloc-hot` violations: 3 (vec!, Vec::new, .clone()
//! inside `inner_kernel`); the same tokens in `cold_path` are fine.

pub fn inner_kernel(xs: &[f64]) -> f64 {
    let scratch = vec![0.0; xs.len()];
    let more: Vec<f64> = Vec::new();
    let copy = scratch.clone();
    xs.iter().sum::<f64>() + copy.len() as f64 + more.len() as f64
}

pub fn cold_path(xs: &[f64]) -> Vec<f64> {
    let mut out = xs.to_vec();
    out.push(0.0);
    out
}

pub fn waived_kernel(xs: &[f64]) -> f64 {
    xs.iter().sum()
}
