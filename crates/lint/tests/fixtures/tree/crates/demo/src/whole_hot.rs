//! Fixture: a `*` (whole-file) hot-path entry. Expected
//! `no-alloc-hot` violations: 2 (`.to_vec()`, `Box::new`); the waived
//! `format!` and the test module are exempt.

pub fn any_function(xs: &[f64]) -> Vec<f64> {
    xs.to_vec()
}

pub fn boxed(x: f64) -> Box<f64> {
    Box::new(x)
}

pub fn waived(x: f64) -> String {
    // bs-lint: allow(no-alloc-hot) -- fixture: diagnostics only, off the solve path
    format!("{x}")
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_allocate() {
        let v = vec![1.0f64, 2.0];
        assert_eq!(super::any_function(&v).len(), 2);
    }
}
