//! Fixture: a file with no violations at all — strings, chars,
//! lifetimes, and doc examples that mention unwrap() must not trip the
//! tokenizer.

/// Doc examples are comments, not code:
///
/// ```
/// let x = Some(1).unwrap(); // fine here
/// ```
pub fn doc_mention() -> &'static str {
    "calling panic!(...) or .unwrap() inside a string is not a violation"
}

pub struct Holder<'a> {
    pub s: &'a str,
}

pub fn label_loop(n: usize) -> usize {
    let mut total = 0;
    'outer: for i in 0..n {
        if i == 3 {
            break 'outer;
        }
        total += i;
    }
    total
}

pub fn char_literals() -> char {
    let c = 'x';
    let _escaped = '\'';
    c
}
