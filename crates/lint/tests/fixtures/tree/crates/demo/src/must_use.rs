//! Fixture: must-use coverage. Expected `must-use-results`
//! violations: 1 (`make_factor` returns the unannotated `DemoFactor`);
//! `DemoPlan` is covered at the type level, `make_factor_annotated` at
//! the fn level, and Result/Option returns are covered by std.

#[must_use]
pub struct DemoPlan {
    pub n: usize,
}

pub struct DemoFactor {
    pub n: usize,
}

pub fn make_plan(n: usize) -> DemoPlan {
    DemoPlan { n }
}

pub fn make_factor(n: usize) -> DemoFactor {
    DemoFactor { n }
}

#[must_use]
pub fn make_factor_annotated(n: usize) -> DemoFactor {
    DemoFactor { n }
}

pub fn try_make_factor(n: usize) -> Result<DemoFactor, ()> {
    Ok(DemoFactor { n })
}
