//! Fixture: panic paths in library code, with test-module and
//! allow-comment exemptions. Expected `no-panic-paths` violations: 4
//! (one unwrap, one expect, one panic!, one todo!).

pub fn bad(v: Option<u32>) -> u32 {
    let a = v.unwrap();
    let b = v.expect("present");
    a + b
}

pub fn aborts() {
    panic!("library code must not abort");
}

pub fn unfinished() {
    todo!()
}

pub fn waived(v: Option<u32>) -> u32 {
    // bs-lint: allow(no-panic-paths) -- fixture: checked by caller
    v.unwrap()
}

pub fn fine(v: Option<u32>) -> u32 {
    v.unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
        let w: Result<u32, ()> = Ok(2);
        w.expect("fine in tests");
        if false {
            panic!("fine in tests");
        }
    }
}
