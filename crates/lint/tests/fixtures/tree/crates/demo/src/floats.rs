//! Fixture: exact float comparisons. Expected `float-eq` violations: 2
//! (`== 1.0` and `!= 2.5`); the `0.0` guard, the waived comparison,
//! and the test module are exempt.

pub fn bad(x: f64, y: f64) -> bool {
    x == 1.0 || y != 2.5
}

pub fn zero_guard(alpha: f64) -> bool {
    alpha == 0.0
}

pub fn waived(beta: f64) -> bool {
    // bs-lint: allow(float-eq) -- fixture: beta is an exact API sentinel
    beta == 1.0
}

pub fn int_compare(n: usize) -> bool {
    n == 1
}

#[cfg(test)]
mod tests {
    #[test]
    fn exact_compare_fine_in_tests() {
        assert!(super::zero_guard(0.0));
        let x = 0.5f64;
        assert!(x * 2.0 == 1.0);
    }
}
