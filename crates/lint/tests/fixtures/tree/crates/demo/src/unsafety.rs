//! Fixture: `unsafe` with and without SAFETY comments. Expected
//! `safety-comment` violations: 2 (one block, one fn).

pub fn documented(p: *const u8) -> u8 {
    // SAFETY: p is non-null and points into the caller's live buffer.
    unsafe { *p }
}

pub fn undocumented(p: *const u8) -> u8 {
    unsafe { *p }
}

/// A doc comment is not a SAFETY comment.
pub unsafe fn undocumented_fn(p: *const u8) -> u8 {
    *p
}

// SAFETY: the transmute preserves layout; both types are repr(C).
pub unsafe fn documented_fn(p: *const u8) -> u8 {
    *p
}
