//! Planted `unsafe-contract` violations: one site per failure class
//! the pass knows. The engine test pins the exact count and messages.

/// No clause at all: both `safety-comment` and `unsafe-contract` fire.
pub fn undocumented(p: &[f64]) -> f64 {
    unsafe { *p.get_unchecked(0) }
}

/// Prose clause with zero structured claims.
pub fn unstructured(p: &[f64]) -> f64 {
    // SAFETY: p is definitely long enough, trust the caller.
    unsafe { *p.get_unchecked(0) }
}

/// A claim with a tag outside the vocabulary.
pub fn unknown_tag(p: &[f64]) -> f64 {
    // SAFETY: [vibes everything is fine here]
    unsafe { *p.get_unchecked(0) }
}

/// A backtick reference that resolves nowhere.
pub fn stale_ref(p: &[f64]) -> f64 {
    // SAFETY: [bounds `zqx_no_such_ident_anywhere` guards the access]
    unsafe { *p.get_unchecked(0) }
}

/// A bounds claim whose only reference lives in another file, far from
/// this site: resolves workspace-wide, but gives the reader nothing to
/// check here.
pub fn far_bounds(p: &[f64]) -> f64 {
    // SAFETY: [bounds `inner_kernel` set the cursor before this call]
    unsafe { *p.get_unchecked(0) }
}

/// A `#[target_feature]` fn whose clause never states its ISA gate.
// SAFETY: [bounds all loads go through bounds-checked slices]
#[target_feature(enable = "avx2")]
pub unsafe fn simd_no_isa() {}
