//! Under `[hot-path-dirs]` and listed whole-file in `[hot-paths]`:
//! covered, so no `hot-path-coverage` diagnostic — and therefore it
//! must stay allocation-free.

pub fn fma(a: f64, b: f64, c: f64) -> f64 {
    a.mul_add(b, c)
}
