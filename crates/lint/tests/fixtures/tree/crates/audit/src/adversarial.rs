//! Adversarial tokenizer fixture: every construct below is a lexical
//! trap. If the tokenizer misreads any of it, a forbidden spelling
//! leaks out of a string or comment into a lint pass and the engine
//! test (which requires this file to stay perfectly clean) fails.

/* A nested /* block comment */ hiding `unsafe { boom() }`,
   x.unwrap(), panic!("no"), and an exact compare y == 2.5 — all of
   which must stay inside this one comment token. */

/// Raw strings full of forbidden spellings: Str tokens, invisible to
/// the ident-driven lints.
pub fn doc_snippets() -> [&'static str; 3] {
    [
        r#"unsafe { ptr.read() } // then x.unwrap() and panic!("boom")"#,
        r##"a raw string with "quote"# inside, spanning
to a second line with .expect("...") and todo!() in it"##,
        "escaped \" quote then x == 1.5 and vec![0.0; 8]",
    ]
}

/// Byte and raw-byte strings get the same treatment.
pub fn byte_snippets() -> (&'static [u8], &'static [u8]) {
    (b"unsafe .unwrap()", br#"panic!() and *mut f64"#)
}

/// A raw identifier spelled like the keyword is *not* the keyword:
/// `safety-comment` must not demand a clause here.
pub fn r#unsafe(n: usize) -> usize {
    let r#loop = n + 1;
    r#loop
}

/// Char literals that look like string openers, lifetimes, and a
/// labeled loop whose label shares the lifetime syntax.
pub fn quote_chars<'a>(s: &'a str) -> (char, char, &'a str) {
    let q = '"';
    let h = '#';
    'outer: loop {
        break 'outer;
    }
    (q, h, s)
}

/// One real `unsafe` with a multi-line structured clause: the contract
/// pass must join the wrapped lines into a single run and resolve
/// every backtick reference.
pub fn tail(buf: &[f64]) -> f64 {
    let last = buf.len().saturating_sub(1);
    // SAFETY: [bounds `last` is clamped below the length of `buf` by
    // the `saturating_sub` above, mirroring a bounds-checked slice
    // index] [alias `buf` is a shared borrow, so no mutable alias of
    // the element can exist while we read it]
    unsafe { *buf.get_unchecked(last) }
}
