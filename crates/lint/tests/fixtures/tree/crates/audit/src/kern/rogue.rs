//! Under `[hot-path-dirs]` but neither listed in `[hot-paths]` nor
//! exempted: exactly one `hot-path-coverage` diagnostic.

pub fn sneaky_new_kernel(x: f64) -> f64 {
    x * 2.0
}
