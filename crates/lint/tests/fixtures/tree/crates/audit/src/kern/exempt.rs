//! Under `[hot-path-dirs]` but exempted with a justification in
//! `[hot-path-exempt]`: allowed to allocate, no coverage diagnostic.

pub fn staging(n: usize) -> Vec<f64> {
    vec![0.0; n]
}
