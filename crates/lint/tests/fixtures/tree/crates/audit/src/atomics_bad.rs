//! Planted `atomics-manifest` violations against the tree manifest,
//! which declares `COUNT:relaxed` and `GHOST:relaxed` for this file
//! and allows only the raw pointer `jobptr`.

use std::sync::atomic::{AtomicUsize, Ordering};

pub static COUNT: AtomicUsize = AtomicUsize::new(0);
pub static ROGUE: AtomicUsize = AtomicUsize::new(0);

/// Declared location, declared ordering: clean.
pub fn ok_op() -> usize {
    COUNT.load(Ordering::Relaxed)
}

/// Declared location, ordering stronger than the manifest permits.
pub fn too_strong() -> usize {
    COUNT.load(Ordering::SeqCst)
}

/// Atomic op on a location the manifest never declared.
pub fn undeclared() {
    ROGUE.store(1, Ordering::Relaxed);
}

/// Raw pointer bound to a name outside `[raw-pointers]`.
pub struct Sneaky {
    pub escape: *const f64,
}
