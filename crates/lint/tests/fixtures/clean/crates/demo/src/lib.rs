//! A file with nothing to report.

pub fn safe_div(a: f64, b: f64) -> Option<f64> {
    if b == 0.0 {
        None
    } else {
        Some(a / b)
    }
}
