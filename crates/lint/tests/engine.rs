//! End-to-end tests over the fixture trees in `tests/fixtures/`:
//! the library API must report every violation class planted in
//! `fixtures/tree`, and the `bs-lint` binary must exit non-zero there
//! and zero on `fixtures/clean`.

use bs_lint::config::Config;
use bs_lint::{collect_workspace_files, lint_files, Diagnostic};
use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture_root(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn lint_fixture(name: &str) -> Vec<Diagnostic> {
    let root = fixture_root(name);
    let cfg_src = std::fs::read_to_string(root.join("lint.toml")).unwrap();
    let cfg = Config::parse(&cfg_src).unwrap();
    let files = collect_workspace_files(&root).unwrap();
    lint_files(&files, &cfg)
}

fn count<'a>(diags: &'a [Diagnostic], lint: &str, file: &str) -> Vec<&'a Diagnostic> {
    diags
        .iter()
        .filter(|d| d.lint == lint && Path::new(&d.file).file_name().is_some_and(|n| n == file))
        .collect()
}

#[test]
fn fixture_tree_reports_every_violation_class() {
    let diags = lint_fixture("tree");

    let panics = count(&diags, "no-panic-paths", "panics.rs");
    assert_eq!(panics.len(), 4, "{panics:?}");
    assert!(panics.iter().any(|d| d.message.contains("unwrap")));
    assert!(panics.iter().any(|d| d.message.contains("expect")));
    assert!(panics.iter().any(|d| d.message.contains("panic!")));
    assert!(panics.iter().any(|d| d.message.contains("todo!")));

    let safety = count(&diags, "safety-comment", "unsafety.rs");
    assert_eq!(safety.len(), 2, "{safety:?}");

    let hot = count(&diags, "no-alloc-hot", "hot.rs");
    assert_eq!(hot.len(), 3, "{hot:?}");
    assert!(hot.iter().all(|d| d.message.contains("inner_kernel")));

    let whole = count(&diags, "no-alloc-hot", "whole_hot.rs");
    assert_eq!(whole.len(), 2, "{whole:?}");

    let floats = count(&diags, "float-eq", "floats.rs");
    assert_eq!(floats.len(), 2, "{floats:?}");

    let must_use = count(&diags, "must-use-results", "must_use.rs");
    assert_eq!(must_use.len(), 1, "{must_use:?}");
    assert!(must_use[0].message.contains("make_factor"));

    // contract.rs plants one site per unsafe-contract failure class.
    let contract = count(&diags, "unsafe-contract", "contract.rs");
    assert_eq!(contract.len(), 6, "{contract:?}");
    assert!(contract
        .iter()
        .any(|d| d.message.contains("without an adjacent")));
    assert!(contract
        .iter()
        .any(|d| d.message.contains("no structured claims")));
    assert!(contract
        .iter()
        .any(|d| d.message.contains("unknown claim tag")));
    assert!(contract.iter().any(|d| d.message.contains("stale")));
    assert!(contract
        .iter()
        .any(|d| d.message.contains("no visible source")));
    assert!(contract
        .iter()
        .any(|d| d.message.contains("needs an `[isa")));
    // The undocumented site also trips the plain safety-comment lint;
    // every other site carries *some* SAFETY text and satisfies it.
    assert_eq!(count(&diags, "safety-comment", "contract.rs").len(), 1);

    // atomics_bad.rs violates the concurrency manifest five ways.
    let atomics = count(&diags, "atomics-manifest", "atomics_bad.rs");
    assert_eq!(atomics.len(), 5, "{atomics:?}");
    assert!(atomics.iter().any(|d| d.message.contains("seqcst")));
    assert!(atomics.iter().any(|d| d.message.contains("`ROGUE`")));
    assert!(atomics.iter().any(|d| d.message.contains("`escape`")));
    assert!(atomics
        .iter()
        .any(|d| d.message.contains("`GHOST`") && d.message.contains("stale")));
    assert!(atomics
        .iter()
        .any(|d| d.message.contains("`jobptr`") && d.message.contains("stale")));

    // kern/: listed and exempted files are covered; the rogue one is not.
    assert_eq!(count(&diags, "hot-path-coverage", "rogue.rs").len(), 1);
    assert!(count(&diags, "hot-path-coverage", "listed.rs").is_empty());
    assert!(count(&diags, "hot-path-coverage", "exempt.rs").is_empty());

    // Nothing else: the waivers, test modules, and clean.rs stay silent.
    assert_eq!(diags.len(), 27, "{diags:#?}");
    assert!(count(&diags, "no-panic-paths", "clean.rs").is_empty());
}

#[test]
fn adversarial_fixture_defeats_no_lint() {
    // adversarial.rs hides `unsafe`, `.unwrap()`, `panic!`, float
    // compares, and raw-pointer spellings inside raw strings, nested
    // block comments, and raw identifiers — and carries one real
    // `unsafe` behind a valid multi-line structured SAFETY clause. If
    // the tokenizer misreads any of it, a diagnostic appears here.
    let diags = lint_fixture("tree");
    let leaked: Vec<_> = diags
        .iter()
        .filter(|d| d.file.ends_with("adversarial.rs"))
        .collect();
    assert!(leaked.is_empty(), "tokenizer leak: {leaked:#?}");
}

#[test]
fn waivers_and_test_modules_are_exempt() {
    let diags = lint_fixture("tree");
    // panics.rs: the waived unwrap (fn waived) is not among the 4.
    assert!(
        !diags
            .iter()
            .any(|d| d.file.ends_with("panics.rs") && d.line > 18 && d.lint == "no-panic-paths"),
        "waived or test-module unwrap leaked: {diags:?}"
    );
    // whole_hot.rs: the waived format! and the test-module vec! stay out.
    assert!(
        !diags
            .iter()
            .any(|d| d.file.ends_with("whole_hot.rs") && d.line > 12),
        "{diags:?}"
    );
    // No malformed directives planted.
    assert!(!diags.iter().any(|d| d.lint == "allow-directive"));
}

#[test]
fn clean_fixture_is_clean() {
    let diags = lint_fixture("clean");
    assert!(diags.is_empty(), "{diags:#?}");
}

#[test]
fn binary_exits_nonzero_on_violations_and_zero_on_clean() {
    let bin = env!("CARGO_BIN_EXE_bs-lint");

    let out = Command::new(bin)
        .arg("--root")
        .arg(fixture_root("tree"))
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("no-panic-paths"), "{stdout}");
    assert!(stdout.contains("violation(s)"), "{stdout}");

    let out = Command::new(bin)
        .arg("--root")
        .arg(fixture_root("clean"))
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "{out:?}");

    // Unknown flag and missing root are usage errors (exit 2).
    let out = Command::new(bin).arg("--bogus").output().unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let out = Command::new(bin)
        .arg("--root")
        .arg(fixture_root("tree"))
        .arg("--config")
        .arg(fixture_root("tree").join("no-such-file.toml"))
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

#[test]
fn list_flag_prints_catalog() {
    let out = Command::new(env!("CARGO_BIN_EXE_bs-lint"))
        .arg("--list")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    for name in bs_lint::config::LINT_NAMES {
        assert!(stdout.contains(name), "missing {name} in {stdout}");
    }
}
