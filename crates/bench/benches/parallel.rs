//! Criterion bench: sequential vs pooled trailing update (the
//! shared-memory Y-MP-style parallelism), plus the parallel gemm
//! kernel itself.

use bs_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use bs_core::{factor_spd, SchurOptions};
use bs_matrix::{gemm, par_gemm, ExecPolicy, Matrix, Trans};
use bs_toeplitz::workloads;

fn bench_parallel_factor(c: &mut Criterion) {
    let mut g = c.benchmark_group("parallel_factor");
    g.sample_size(10);
    let t = workloads::random_spd_block(32, 64, 13); // n = 2048
    for (label, exec) in [
        ("sequential", ExecPolicy::sequential()),
        ("pooled", ExecPolicy::max_threads()),
    ] {
        g.bench_function(label, |b| {
            let opts = SchurOptions {
                exec,
                ..Default::default()
            };
            b.iter(|| factor_spd(&t, &opts).unwrap());
        });
    }
    g.finish();
}

fn bench_gemm(c: &mut Criterion) {
    let mut g = c.benchmark_group("gemm");
    g.sample_size(10);
    for &n in &[256usize, 512] {
        let a = Matrix::from_fn(n, n, |i, j| ((i * 7 + j) % 13) as f64);
        let b_ = Matrix::from_fn(n, n, |i, j| ((i + 3 * j) % 11) as f64);
        g.bench_with_input(BenchmarkId::new("seq", n), &n, |bch, _| {
            let mut cm = Matrix::zeros(n, n);
            bch.iter(|| gemm(1.0, a.rf(), Trans::No, b_.rf(), Trans::No, 0.0, cm.mt()));
        });
        g.bench_with_input(BenchmarkId::new("par", n), &n, |bch, _| {
            let mut cm = Matrix::zeros(n, n);
            bch.iter(|| par_gemm(1.0, a.rf(), Trans::No, b_.rf(), Trans::No, 0.0, cm.mt()));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_parallel_factor, bench_gemm);
criterion_main!(benches);
