//! Criterion bench: the block Schur solver against the baselines —
//! Levinson-Durbin (the O(n²) incumbent), the independent scalar
//! hyperbolic Schur, and dense Cholesky (the O(n³) ceiling).

use bs_baselines::{
    block_levinson_solve, dense_cholesky_solve, levinson_solve, scalar_schur_factor,
};
use bs_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use bs_core::{factor_spd, SchurOptions};
use bs_toeplitz::workloads;
use bs_toeplitz::{FastToeplitzMatVec, ToeplitzInverse};

fn bench_solvers(c: &mut Criterion) {
    let mut g = c.benchmark_group("baselines");
    g.sample_size(10);
    for &n in &[256usize, 1024] {
        let t = workloads::random_spd_scalar(n, 5);
        let row: Vec<f64> = (0..n).map(|j| t.get(0, j)).collect();
        let (b, _) = workloads::rhs_for_ones(&t);

        g.bench_with_input(BenchmarkId::new("levinson_solve", n), &n, |bch, _| {
            bch.iter(|| levinson_solve(&row, &b).unwrap());
        });
        g.bench_with_input(BenchmarkId::new("scalar_schur_factor", n), &n, |bch, _| {
            bch.iter(|| scalar_schur_factor(&row).unwrap());
        });
        g.bench_with_input(BenchmarkId::new("block_schur_ms8", n), &n, |bch, _| {
            let opts = SchurOptions {
                block_size: Some(8),
                ..Default::default()
            };
            bch.iter(|| factor_spd(&t, &opts).unwrap());
        });
        g.bench_with_input(BenchmarkId::new("block_levinson_m1", n), &n, |bch, _| {
            bch.iter(|| block_levinson_solve(&t, &b).unwrap());
        });
        if n <= 256 {
            g.bench_with_input(BenchmarkId::new("dense_cholesky_solve", n), &n, |bch, _| {
                bch.iter(|| dense_cholesky_solve(&t, &b).unwrap());
            });
        }
    }
    g.finish();
}

fn bench_repeated_solves(c: &mut Criterion) {
    // Amortized repeated solves: triangular backsolves vs the
    // Gohberg-Semencul O(n log n) operator vs one FFT matvec.
    let mut g = c.benchmark_group("repeated_solves");
    g.sample_size(20);
    let n = 2048;
    let t = workloads::random_spd_scalar(n, 9);
    let (b, _) = workloads::rhs_for_ones(&t);
    let f = factor_spd(
        &t,
        &SchurOptions {
            block_size: Some(8),
            ..Default::default()
        },
    )
    .unwrap();
    g.bench_function("triangular_solve", |bch| {
        bch.iter(|| f.solve(&b).unwrap());
    });
    let mut e0 = vec![0.0; n];
    e0[0] = 1.0;
    let u = f.solve(&e0).unwrap();
    let inv = ToeplitzInverse::from_first_column(&u).unwrap();
    g.bench_function("gohberg_semencul_apply", |bch| {
        bch.iter(|| inv.apply(&b));
    });
    let fast = FastToeplitzMatVec::new(&t);
    g.bench_function("fft_matvec", |bch| {
        bch.iter(|| fast.apply(&b));
    });
    g.finish();
}

criterion_group!(benches, bench_solvers, bench_repeated_solves);
criterion_main!(benches);
