//! Criterion bench: SPD block Schur factorization across block
//! reflector representations and problem sizes, plus the dense
//! Cholesky ceiling — the headline "O(m n²) vs O(n³)" contrast.

use bs_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use bs_core::{factor_spd, RepKind, SchurOptions};
use bs_toeplitz::workloads;

fn bench_representations(c: &mut Criterion) {
    let mut g = c.benchmark_group("factor_reps");
    g.sample_size(10);
    let t = workloads::random_spd_block(8, 64, 42); // n = 512
    for rep in RepKind::ALL {
        g.bench_with_input(
            BenchmarkId::new("rep", format!("{rep}")),
            &rep,
            |b, &rep| {
                let opts = SchurOptions {
                    rep,
                    ..Default::default()
                };
                b.iter(|| factor_spd(&t, &opts).unwrap());
            },
        );
    }
    g.finish();
}

fn bench_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("factor_scaling");
    g.sample_size(10);
    for &n in &[128usize, 256, 512, 1024] {
        let t = workloads::random_spd_block(8, n / 8, 7);
        g.bench_with_input(BenchmarkId::new("schur_m8", n), &t, |b, t| {
            b.iter(|| factor_spd(t, &SchurOptions::default()).unwrap());
        });
        if n <= 512 {
            let dense = t.to_dense();
            g.bench_with_input(BenchmarkId::new("dense_cholesky", n), &dense, |b, d| {
                b.iter(|| bs_matrix::chol::cholesky(d).unwrap());
            });
        }
    }
    g.finish();
}

fn bench_inplace_vs_shift(c: &mut Criterion) {
    let mut g = c.benchmark_group("phase3");
    g.sample_size(10);
    let t = workloads::random_spd_scalar(1024, 3);
    for (label, explicit_shift) in [("in_place", false), ("explicit_shift", true)] {
        g.bench_function(label, |b| {
            let opts = SchurOptions {
                block_size: Some(8),
                explicit_shift,
                ..Default::default()
            };
            b.iter(|| factor_spd(&t, &opts).unwrap());
        });
    }
    g.finish();
}

/// The bs-probe acceptance check: with tracing disabled (the default)
/// the span/event hooks in the factorization hot path must cost nothing
/// measurable — each disabled hook is one relaxed atomic load.
fn bench_tracing_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("tracing_overhead");
    g.sample_size(10);
    let t = workloads::random_spd_block(8, 64, 42); // n = 512
    let opts = SchurOptions::default();
    bs_probe::trace::disable();
    g.bench_function("tracing_disabled", |b| {
        b.iter(|| factor_spd(&t, &opts).unwrap());
    });
    bs_probe::trace::enable();
    g.bench_function("tracing_enabled", |b| {
        b.iter(|| {
            let f = factor_spd(&t, &opts).unwrap();
            // Drain the ring buffers so repeated samples don't just
            // overwrite a full buffer (that would under-state the cost).
            bs_probe::trace::take_events();
            f
        });
    });
    bs_probe::trace::disable();
    g.finish();
}

criterion_group!(
    benches,
    bench_representations,
    bench_scaling,
    bench_inplace_vs_shift,
    bench_tracing_overhead
);
criterion_main!(benches);
