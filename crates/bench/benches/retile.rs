//! Criterion bench: the §6.5 block-size tradeoff (`m → m_s` retiling)
//! as a measured ablation — `4·m_s·n²` flops against the level-3
//! efficiency of larger blocks (Fig. 10's mechanism).

use bs_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use bs_core::{factor_spd, SchurOptions};
use bs_toeplitz::workloads;

fn bench_retile(c: &mut Criterion) {
    let mut g = c.benchmark_group("retile_ms");
    g.sample_size(10);
    let n = 1024;
    let t = workloads::random_spd_scalar(n, 11);
    for ms_ in [1usize, 2, 4, 8, 16, 32] {
        g.bench_with_input(BenchmarkId::new("ms", ms_), &ms_, |b, &ms_| {
            let opts = SchurOptions {
                block_size: Some(ms_),
                ..Default::default()
            };
            b.iter(|| factor_spd(&t, &opts).unwrap());
        });
    }
    g.finish();
}

criterion_group!(benches, bench_retile);
criterion_main!(benches);
