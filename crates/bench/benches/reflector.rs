//! Criterion bench: phase 1 (panel → block reflector production) and
//! phase 2 (application to the trailing generator) per representation —
//! the microcosm of eqs. 25-32.

use bs_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use bs_core::panel::factor_panel;
use bs_core::RepKind;
use bs_matrix::ldlt::Signature;
use bs_matrix::Matrix;

fn make_panel(m: usize) -> Matrix {
    let mut state = 0x12345u64;
    let mut rnd = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        ((state % 1000) as f64 - 500.0) / 500.0
    };
    let mut p = Matrix::zeros(2 * m, m);
    for j in 0..m {
        for i in 0..=j {
            p[(i, j)] = rnd() * 0.5;
        }
        p[(j, j)] = 2.0 + rnd().abs();
        // Damp the lower column so its hyperbolic norm stays positive
        // at every block size.
        let damp = 0.5 / (m as f64).sqrt();
        for i in 0..m {
            p[(m + i, j)] = rnd() * damp;
        }
    }
    p
}

fn bench_blocking(c: &mut Criterion) {
    let mut g = c.benchmark_group("panel_production");
    for m in [8usize, 32] {
        let w = Signature::hyperbolic(m);
        let p0 = make_panel(m);
        for rep in RepKind::ALL {
            g.bench_with_input(
                BenchmarkId::new(format!("m{m}"), format!("{rep}")),
                &rep,
                |b, &rep| {
                    b.iter_batched(
                        || p0.clone(),
                        |mut p| factor_panel(p.mt(), &w, rep, 0, 1e-13, 1.0).unwrap(),
                        bs_bench::harness::BatchSize::SmallInput,
                    );
                },
            );
        }
    }
    g.finish();
}

fn bench_application(c: &mut Criterion) {
    let mut g = c.benchmark_group("reflector_apply");
    let m = 16;
    let q = 2048;
    let w = Signature::hyperbolic(m);
    let p0 = make_panel(m);
    let trail = Matrix::from_fn(2 * m, q, |i, j| ((i * 31 + j * 7) % 17) as f64 - 8.0);
    for rep in RepKind::ALL {
        let mut panel = p0.clone();
        let refl = factor_panel(panel.mt(), &w, rep, 0, 1e-13, 1.0).unwrap();
        g.bench_with_input(
            BenchmarkId::new("apply", format!("{rep}")),
            &refl,
            |b, refl| {
                b.iter_batched(
                    || trail.clone(),
                    |mut t| refl.apply(t.mt(), &bs_matrix::ExecPolicy::sequential()),
                    bs_bench::harness::BatchSize::LargeInput,
                );
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_blocking, bench_application);
criterion_main!(benches);
