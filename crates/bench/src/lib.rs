//! Shared helpers for the figure-regeneration binaries and benches.
//! Each binary under `src/bin/` regenerates one figure or experiment of
//! the paper; `reproduce_all` chains them and collects their `@@BENCH`
//! records into `BENCH_schur.json`.

use bs_probe::Json;
use std::time::Instant;

pub mod harness;
pub mod regression;

/// Marker prefix for machine-readable bench records on stdout.
/// `reproduce_all` greps child output for these lines.
pub const BENCH_MARKER: &str = "@@BENCH ";

/// One timed run of a kernel or driver: wall time plus the probe-side
/// evidence of what the run did.
#[derive(Clone, Debug)]
pub struct TimedRun {
    /// Elapsed wall-clock seconds.
    pub wall_s: f64,
    /// Flops performed during the run, aggregated across *all* threads
    /// (`bs_matrix::flops::total` delta — parallel workers included).
    pub flops: u64,
    /// Peak §8.2 growth factor seen so far by the stability monitor
    /// (0 when `bs_probe::stability` is disabled).
    pub peak_growth: f64,
}

impl TimedRun {
    /// Effective rate in Gflop/s (0 when no flops were recorded).
    pub fn gflops(&self) -> f64 {
        if self.wall_s > 0.0 {
            self.flops as f64 / self.wall_s / 1e9
        } else {
            0.0
        }
    }
}

/// Wall-clock a closure and capture its probe counters.
pub fn time_it<T>(f: impl FnOnce() -> T) -> (T, TimedRun) {
    let flops0 = bs_matrix::flops::total();
    let start = Instant::now();
    let out = f();
    let wall_s = start.elapsed().as_secs_f64();
    (
        out,
        TimedRun {
            wall_s,
            flops: bs_matrix::flops::total() - flops0,
            peak_growth: bs_probe::stability::peak_growth(),
        },
    )
}

/// Credit analytically-modeled flops to the flop counter the timers
/// read, so simulation-driven experiments (fig6–fig9) report their
/// work in `@@BENCH` records the same way instrumented runs do.
pub fn charge_model_flops(flops: f64) {
    if flops.is_finite() && flops > 0.0 {
        bs_matrix::flops::add(flops as u64);
    }
}

/// Emit a machine-readable bench record (one JSON object on a marker
/// line). `extra` fields ride along with the standard ones.
pub fn emit_bench(name: &str, wall_s: f64, flops: u64, extra: &[(&str, f64)]) {
    let mut fields: Vec<(&str, Json)> = vec![
        ("name", Json::Str(name.to_string())),
        ("wall_s", Json::Num(wall_s)),
        ("flops", Json::Num(flops as f64)),
        ("peak_growth", Json::Num(bs_probe::stability::peak_growth())),
    ];
    for (k, v) in extra {
        fields.push((k, Json::Num(*v)));
    }
    println!("{BENCH_MARKER}{}", Json::obj(fields));
}

/// Whole-binary timer: `start` at the top of a figure binary's `main`,
/// `finish` at the bottom — prints the `@@BENCH` record the
/// `reproduce_all` driver collects into `BENCH_schur.json`.
pub struct RunTimer {
    name: &'static str,
    start: Instant,
    flops0: u64,
}

impl RunTimer {
    pub fn start(name: &'static str) -> Self {
        RunTimer {
            name,
            start: Instant::now(),
            flops0: bs_matrix::flops::total(),
        }
    }

    pub fn finish(self) {
        emit_bench(
            self.name,
            self.start.elapsed().as_secs_f64(),
            bs_matrix::flops::total() - self.flops0,
            &[],
        );
    }
}

/// Render an aligned text table (markdown-pipe style).
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n### {title}\n");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::from("|");
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!(
                " {:>w$} |",
                c,
                w = widths[i.min(widths.len() - 1)]
            ));
        }
        println!("{s}");
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    line(&sep);
    for row in rows {
        line(row);
    }
}

/// Scientific-notation cell.
pub fn sci(v: f64) -> String {
    format!("{v:.3e}")
}

/// Milliseconds cell.
pub fn ms(v: f64) -> String {
    format!("{:.3}", v * 1e3)
}

/// `--quick` flag: smaller problem sizes for CI-speed runs.
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_it_returns_value_and_counters() {
        let (v, run) = time_it(|| {
            bs_matrix::flops::add(123);
            41 + 1
        });
        assert_eq!(v, 42);
        assert!(run.wall_s >= 0.0);
        assert!(run.flops >= 123, "flops delta must include the run's adds");
    }

    #[test]
    fn gflops_handles_zero_time() {
        let r = TimedRun {
            wall_s: 0.0,
            flops: 100,
            peak_growth: 0.0,
        };
        assert_eq!(r.gflops(), 0.0);
    }

    #[test]
    fn cells_format() {
        assert_eq!(sci(12345.678), "1.235e4");
        assert_eq!(ms(0.0123456), "12.346");
    }

    #[test]
    fn bench_record_round_trips_through_json() {
        // emit_bench writes to stdout; reproduce the payload here and
        // make sure the parser reproduce_all uses accepts it.
        let j = Json::obj(vec![
            ("name", Json::Str("fig6".into())),
            ("wall_s", Json::Num(0.25)),
            ("flops", Json::Num(1.0e9)),
        ]);
        let parsed = bs_probe::Json::parse(&j.to_string()).unwrap();
        assert_eq!(parsed.get("name").and_then(Json::as_str), Some("fig6"));
        assert_eq!(
            parsed.get("flops").and_then(Json::as_u64),
            Some(1_000_000_000)
        );
    }
}
