//! Shared helpers for the figure-regeneration binaries and criterion
//! benches. Each binary under `src/bin/` regenerates one figure or
//! experiment of the paper; `reproduce_all` chains them.

use std::time::Instant;

/// Wall-clock a closure.
pub fn time_it<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Render an aligned text table (markdown-pipe style).
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n### {title}\n");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::from("|");
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!(" {:>w$} |", c, w = widths[i.min(widths.len() - 1)]));
        }
        println!("{s}");
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    line(&sep);
    for row in rows {
        line(row);
    }
}

/// Scientific-notation cell.
pub fn sci(v: f64) -> String {
    format!("{v:.3e}")
}

/// Milliseconds cell.
pub fn ms(v: f64) -> String {
    format!("{:.3}", v * 1e3)
}

/// `--quick` flag: smaller problem sizes for CI-speed runs.
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_it_returns_value() {
        let (v, t) = time_it(|| 41 + 1);
        assert_eq!(v, 42);
        assert!(t >= 0.0);
    }

    #[test]
    fn cells_format() {
        assert_eq!(sci(12345.678), "1.235e4");
        assert_eq!(ms(0.0123456), "12.346");
    }
}
