//! Open-loop load generator against the bs-serve front-end: an
//! in-process TCP server, two hot operators, and concurrent client
//! threads issuing batched solves on a fixed arrival schedule.
//!
//! Open-loop means each request's latency is measured from its
//! *scheduled* arrival time, not from when the (blocking) client got
//! around to sending it — so a slow response inflates the latency of
//! the requests queued behind it instead of silently thinning the
//! arrival stream (the coordinated-omission correction).
//!
//! Asserted invariants, not just reported numbers:
//! - exactly two factorizations server-side (single-flight held under
//!   the multi-client stampede on two keys),
//! - zero requests shed under the default in-flight bound,
//! - every response bitwise equal to an in-process `Factor` solve of
//!   the same system,
//! - `warm_cache_speedup` (cold first-sight solve over warm p50) > 5
//!   at n = 256 — the factor-once/solve-many economics the cache
//!   exists to deliver.
//!
//! Run: `cargo run -p bs-bench --release --bin serve_load [--quick]`

use bs_bench::{emit_bench, quick_mode, RunTimer};
use bs_matrix::Matrix;
use bs_serve::{Client, Server, ServerConfig};
use bs_toeplitz::{workloads, SymBlockToeplitz};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Concurrent client connections.
const CLIENTS: usize = 4;
/// RHS columns per solve request (exercises the batched multi-RHS
/// path server-side).
const NCOLS: usize = 4;
/// Distinct right-hand sides cycled per operator.
const RHS_POOL: usize = 8;

struct HotOperator {
    t: SymBlockToeplitz,
    fingerprint: u64,
    rhs: Vec<Matrix>,
    /// Reference solutions from a local `Factor`, for bitwise checks.
    solutions: Vec<Matrix>,
}

fn hot_operator(n: usize, seed: u64) -> HotOperator {
    let t = workloads::random_spd_scalar(n, seed);
    let factor = bs_core::Factor::new(&t).expect("reference factorization");
    let rhs: Vec<Matrix> = (0..RHS_POOL)
        .map(|k| {
            Matrix::from_fn(n, NCOLS, |i, j| {
                ((i * 7 + j * 3 + k * 11) % 17) as f64 - 8.0
            })
        })
        .collect();
    let solutions = rhs
        .iter()
        .map(|b| factor.solve_batch(b).expect("reference solve"))
        .collect();
    HotOperator {
        fingerprint: t.fingerprint(),
        t,
        rhs,
        solutions,
    }
}

/// One client thread: `solves` requests on an open-loop schedule,
/// alternating operators, verifying every response bitwise. Returns
/// the per-request latencies (ns, from scheduled arrival).
fn run_client(
    addr: std::net::SocketAddr,
    ops: &[HotOperator],
    solves: usize,
    client_id: usize,
    arrival_gap: Duration,
) -> Vec<u64> {
    let mut client = Client::connect_tcp(addr).expect("client connect");
    let mut latencies = Vec::with_capacity(solves);
    let start = Instant::now();
    for k in 0..solves {
        let scheduled = arrival_gap * k as u32;
        if let Some(wait) = scheduled.checked_sub(start.elapsed()) {
            std::thread::sleep(wait);
        }
        let op = &ops[(client_id + k) % ops.len()];
        let b_idx = (client_id * 13 + k) % RHS_POOL;
        let x = client
            .solve_cached(op.fingerprint, &op.rhs[b_idx])
            .expect("warm solve");
        latencies.push((start.elapsed().saturating_sub(scheduled)).as_nanos() as u64);
        assert_eq!(
            x.as_slice(),
            op.solutions[b_idx].as_slice(),
            "client {client_id} request {k}: served solution diverged bitwise"
        );
    }
    latencies
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

fn main() {
    let timer = RunTimer::start("serve_load");
    let quick = quick_mode();
    let n = 256usize;
    let solves_per_client = if quick { 75 } else { 300 };

    let ops = Arc::new(vec![hot_operator(n, 41), hot_operator(n, 42)]);

    let handle = Server::new(ServerConfig::default())
        .serve_tcp("127.0.0.1:0")
        .expect("bind loopback server");
    let addr = handle.tcp_addr().expect("tcp endpoint");

    // Cold phase: first sight of each operator through OP_SOLVE — the
    // request pays the full factorization. Timed for the
    // warm_cache_speedup headline.
    let mut warmer = Client::connect_tcp(addr).expect("warm-up connect");
    let mut cold_ns = Vec::new();
    for op in ops.iter() {
        let t0 = Instant::now();
        let x = warmer.solve(&op.t, &op.rhs[0]).expect("cold solve");
        cold_ns.push(t0.elapsed().as_nanos() as u64);
        assert_eq!(
            x.as_slice(),
            op.solutions[0].as_slice(),
            "cold solve diverged bitwise"
        );
    }

    // Calibrate the open-loop arrival rate to this host: the offered
    // load across all clients targets ~1/3 of the measured sequential
    // service capacity, so the schedule is aggressive enough to keep
    // the server busy but stays stable on a single-core runner (an
    // open-loop schedule past saturation has unbounded queue growth by
    // construction — that is a property of the host, not the server).
    let warm_probe = Instant::now();
    let probes = 20;
    for k in 0..probes {
        let op = &ops[k % ops.len()];
        warmer
            .solve_cached(op.fingerprint, &op.rhs[k % RHS_POOL])
            .expect("calibration solve");
    }
    let warm_ns = warm_probe.elapsed().as_nanos() as u64 / probes as u64;
    let arrival_gap = Duration::from_nanos(warm_ns * CLIENTS as u64 * 3);

    // Load phase: concurrent clients hammer the two warm factors.
    let clients: Vec<_> = (0..CLIENTS)
        .map(|id| {
            let ops = Arc::clone(&ops);
            std::thread::spawn(move || run_client(addr, &ops, solves_per_client, id, arrival_gap))
        })
        .collect();
    let mut latencies: Vec<u64> = clients
        .into_iter()
        .flat_map(|h| h.join().expect("client thread"))
        .collect();
    latencies.sort_unstable();

    let snap = warmer.stats().expect("stats");
    assert_eq!(
        snap.factorizations, 2,
        "exactly one factorization per hot operator (single-flight)"
    );
    assert_eq!(snap.shed, 0, "no sheds under the default in-flight bound");
    let total_solves = CLIENTS * solves_per_client;
    assert_eq!(latencies.len(), total_solves);

    let p50 = percentile(&latencies, 0.50);
    let p99 = percentile(&latencies, 0.99);
    let p999 = percentile(&latencies, 0.999);
    let cold = *cold_ns.iter().min().expect("cold samples");
    // Cache economics compared like-for-like: both the cold first-sight
    // solve and the warm calibration ran one request at a time, so the
    // ratio isolates the factorization the cache saved (the loaded
    // p50/p99 above additionally carry this host's queueing).
    let warm_cache_speedup = cold as f64 / warm_ns as f64;
    assert!(
        warm_cache_speedup > 5.0,
        "warm_cache_speedup {warm_cache_speedup:.1} <= 5 at n = {n}: \
         a cached solve ({warm_ns} ns unloaded) must be far cheaper than \
         the cold factor+solve ({cold} ns)"
    );

    println!(
        "serve load: {CLIENTS} clients x {solves_per_client} solves ({NCOLS} \
         rhs cols each) against 2 hot operators at n = {n}, arrival gap \
         {:.0} us/client (calibrated)",
        arrival_gap.as_nanos() as f64 / 1e3
    );
    println!(
        "latency from scheduled arrival: p50 {:.1} us, p99 {:.1} us, p999 {:.1} us",
        p50 as f64 / 1e3,
        p99 as f64 / 1e3,
        p999 as f64 / 1e3
    );
    println!(
        "cold first-sight solve {:.1} us vs {:.1} us warm unloaded -> \
         warm_cache_speedup {warm_cache_speedup:.1}x; {} hits, {} \
         single-flight waits, 0 shed",
        cold as f64 / 1e3,
        warm_ns as f64 / 1e3,
        snap.hits,
        snap.single_flight_waits
    );

    // Two triangular solves per RHS column per request.
    let solve_flops = (2 * n * n * NCOLS * total_solves) as u64;
    let wall_s = latencies.iter().map(|&l| l as f64).sum::<f64>() / 1e9;
    emit_bench(
        "serve_load",
        wall_s,
        solve_flops,
        &[
            ("n", n as f64),
            ("clients", CLIENTS as f64),
            ("solves", total_solves as f64),
            ("rhs_cols", NCOLS as f64),
            ("p50_us", p50 as f64 / 1e3),
            ("p99_us", p99 as f64 / 1e3),
            ("p999_us", p999 as f64 / 1e3),
            ("cold_us", cold as f64 / 1e3),
            ("warm_unloaded_us", warm_ns as f64 / 1e3),
            ("warm_cache_speedup", warm_cache_speedup),
            ("factorizations", snap.factorizations as f64),
            ("shed", snap.shed as f64),
        ],
    );

    handle.shutdown();
    timer.finish();
}
