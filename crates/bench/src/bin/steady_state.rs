//! Steady-state solver benchmark: repeated factor/solve cycles against
//! a stream of same-shaped SPD block Toeplitz systems, comparing a warm
//! [`ToeplitzSolver`] (plan + workspace reused via `refactor`) against
//! a cold solver per system and against the per-call-allocation
//! baseline (same plan, pooling disabled).
//!
//! The warm path must perform **zero** workspace allocations inside the
//! measured loop — after one warm-up refactor the retired triangular
//! factor is donated for direct reuse (skipping even the defensive
//! zero-fill) and everything else comes out of the recycled pool. That
//! invariant is asserted here via the bs-probe-backed workspace
//! counters, not just reported.
//!
//! The wall-clock win from reuse is a *fixed per-cycle* saving
//! (allocations plus scratch zero-fills), so it is largest where the
//! elimination is cheapest: the benchmark sweeps n and asserts the
//! warm path strictly beats the per-call baseline at the smallest
//! size, where the fixed cost is a measurable fraction of the cycle.
//! At larger n the O(m n²) flops dominate and the three paths
//! converge; there the warm path only has to stay within 10% (it is
//! never slower in practice, but a virtualized host's min-of-rounds
//! still carries percent-level noise).
//!
//! Run: `cargo run -p bs-bench --release --bin steady_state [--quick]`

use bs_bench::{emit_bench, ms, print_table, quick_mode};
use bs_core::{
    Factorization, PlanRequest, PlanWorkspace, Precision, SchurOptions, SolverOptions,
    ToeplitzSolver,
};
use bs_matrix::{ExecPolicy, Partition};
use bs_perfmodel::tradeoff;
use bs_probe::metrics::{self, Counter};
use bs_toeplitz::workloads;
use std::time::Instant;

/// Systems in the steady-state stream (refactor/solve cycles per round).
const SYSTEMS: usize = 8;

fn solve_factorization(f: &Factorization, b: &[f64]) -> Vec<f64> {
    match f {
        Factorization::Spd(f) => f.solve(b).expect("spd solve"),
        Factorization::Indefinite(f) => f.solve(b).expect("indefinite solve"),
    }
}

struct SizeResult {
    n: usize,
    m: usize,
    iters: usize,
    warm_round: f64,
    cold_round: f64,
    percall_round: f64,
    high_water: usize,
    cold_allocs_per_cycle: u64,
    percall_allocs_per_cycle: u64,
    per_factor_flops: f64,
}

/// Time one (m, p) size through all three paths: interleave the paths
/// round by round (one round = one pass over all systems), rotating
/// which path goes first each round, and keep each path's best round.
/// The min kills one-off scheduler noise; the rotation kills the
/// systematic bias against whichever path runs while the caches are
/// cold and the clock is still ramping — without it the first-measured
/// path loses a fixed penalty every round and the min cannot recover
/// it.
fn bench_size(m: usize, p: usize, rounds: usize) -> SizeResult {
    let n = m * p;
    // A stream of same-shaped systems: the AR(1) workload at varying
    // seeds, so every refactor sees genuinely different data.
    let systems: Vec<_> = (0..SYSTEMS as u64)
        .map(|s| workloads::spd_ar1_block(m, p, 0.55, 700 + s))
        .collect();
    let rhs: Vec<_> = systems
        .iter()
        .map(|t| workloads::rhs_for_ones(t).0)
        .collect();
    let iters = rounds * systems.len();

    // Let the cost model pick representation and algorithmic block
    // size (the plan/execute engine's auto-selection path).
    let req = PlanRequest::default();
    let mut solver =
        ToeplitzSolver::with_plan_request(&systems[0], &req).expect("initial factorization");
    // One warm-up refactor donates the retired factor storage for
    // reuse; from here on the elimination loop is allocation-free.
    solver.refactor(&systems[1]).expect("warm-up refactor");
    solver.reset_workspace_stats();
    let per_factor_flops = solver.plan().predicted_flops();

    // The per-call-allocation baseline runs the same plan through a
    // fresh bypass workspace per system (pooling disabled, engine
    // scratch cold every call): every temporary is allocated per call,
    // exactly the behaviour the plan/workspace machinery replaced.
    let plan = solver.plan().clone();
    let mut percall_total_allocs = 0u64;

    let mut warm_round = f64::INFINITY;
    let mut cold_round = f64::INFINITY;
    let mut percall_round = f64::INFINITY;
    let mut warm_check = 0.0f64;
    let mut cold_check = 0.0f64;
    let mut percall_check = 0.0f64;
    // -1 is an untimed warm-up round for caches / branch predictors.
    for round in -1i64..rounds as i64 {
        for k in 0..3u64 {
            let start = Instant::now();
            let mut check = 0.0f64;
            match (round.max(0) as u64 + k) % 3 {
                0 => {
                    for (t, b) in systems.iter().zip(&rhs) {
                        solver.refactor(t).expect("steady-state refactor");
                        let x = solver.solve(b).expect("steady-state solve");
                        check += x[0];
                    }
                    if round >= 0 {
                        warm_round = warm_round.min(start.elapsed().as_secs_f64());
                        warm_check = check;
                    }
                }
                1 => {
                    // Cold baseline: fresh solver (plan + pool) per system.
                    for (t, b) in systems.iter().zip(&rhs) {
                        let cold =
                            ToeplitzSolver::with_plan_request(t, &req).expect("cold factorization");
                        let x = cold.solve(b).expect("cold solve");
                        check += x[0];
                    }
                    if round >= 0 {
                        cold_round = cold_round.min(start.elapsed().as_secs_f64());
                        cold_check = check;
                    }
                }
                _ => {
                    // Per-call-allocation baseline: same plan, no pooling.
                    for (t, b) in systems.iter().zip(&rhs) {
                        let mut pw = PlanWorkspace::bypass();
                        let f = plan.execute(t, &mut pw).expect("per-call factorization");
                        let x = solve_factorization(&f, b);
                        check += x[0];
                        if round >= 0 {
                            percall_total_allocs += pw.allocations();
                        }
                    }
                    if round >= 0 {
                        percall_round = percall_round.min(start.elapsed().as_secs_f64());
                        percall_check = check;
                    }
                }
            }
        }
    }

    let allocations = solver.workspace_allocations();
    let high_water = solver.workspace_high_water();
    let percall_allocs_per_cycle = percall_total_allocs / iters as u64;
    let cold_allocs_per_cycle = {
        let c = ToeplitzSolver::with_plan_request(&systems[0], &req).expect("cold factorization");
        c.workspace_allocations()
    };
    assert_eq!(
        allocations, 0,
        "n={n}: warm steady-state loop must be allocation-free (saw {allocations} pool misses)"
    );
    assert!(
        (warm_check - cold_check).abs() <= 1e-9 * warm_check.abs().max(1.0),
        "n={n}: warm and cold paths disagree: {warm_check} vs {cold_check}"
    );
    assert!(
        (warm_check - percall_check).abs() <= 1e-9 * warm_check.abs().max(1.0),
        "n={n}: warm and per-call paths disagree: {warm_check} vs {percall_check}"
    );

    SizeResult {
        n,
        m,
        iters,
        warm_round,
        cold_round,
        percall_round,
        high_water,
        cold_allocs_per_cycle,
        percall_allocs_per_cycle,
        per_factor_flops,
    }
}

/// Parallel-vs-sequential sweep over the warm steady-state loop: the
/// same stream of systems through identically-planned solvers whose
/// `ExecPolicy` differs only in thread count. `min_work` is derived
/// from the calibrated kernel rate and the measured pool dispatch
/// overhead ([`tradeoff::min_dispatch_work`]) — the crossover the plan
/// itself would pick — so regions too small to recoup a dispatch run
/// inline instead of being fanned out at a loss (the old pinned
/// `min_work: 1` lost ~40% at n = 64 / 2 threads to exactly that).
/// Asserts the pooled warm path stays allocation-free, produces
/// bitwise-identical factors, and never drops below 0.95x sequential
/// at the small-n point, then emits one `@@BENCH` record per thread
/// count with the `threads` / `speedup_vs_seq` fields.
fn bench_exec_sweep(m: usize, p: usize, rounds: usize, assert_speedup_floor: bool) {
    let n = m * p;
    let systems: Vec<_> = (0..SYSTEMS as u64)
        .map(|s| workloads::spd_ar1_block(m, p, 0.55, 900 + s))
        .collect();
    let rhs: Vec<_> = systems
        .iter()
        .map(|t| workloads::rhs_for_ones(t).0)
        .collect();

    let max_t = bs_matrix::par::current_num_threads();
    let mut sweep = vec![1usize, 2, max_t];
    sweep.sort_unstable();
    sweep.dedup();

    // The overhead-derived dispatch gate: a parallel region below this
    // work volume (product-of-extents units) cannot pay for waking the
    // pool, so the strip dispatcher runs it inline.
    let rate = tradeoff::RateTable::new(&bs_matrix::kernel::calibrate::calibration().points);
    let overhead_ns = bs_matrix::par::dispatch_overhead_ns();
    let min_work = tradeoff::min_dispatch_work(rate.rate(m), overhead_ns);

    let mut seq_round = f64::INFINITY;
    let mut seq_x0: Vec<f64> = Vec::new();
    for &threads in &sweep {
        let opts = SolverOptions {
            spd: SchurOptions {
                exec: ExecPolicy {
                    threads,
                    min_work,
                    partition: Partition::Auto,
                },
                ..Default::default()
            },
            ..Default::default()
        };
        let mut solver =
            ToeplitzSolver::with_options(&systems[0], &opts).expect("sweep factorization");
        let round_flops = (solver.plan().predicted_flops() * SYSTEMS as f64) as u64;
        solver.refactor(&systems[1]).expect("sweep warm-up");
        solver.reset_workspace_stats();
        let mut best = f64::INFINITY;
        let mut x0 = Vec::new();
        for round in -1i64..rounds as i64 {
            let start = Instant::now();
            for (t, b) in systems.iter().zip(&rhs) {
                solver.refactor(t).expect("sweep refactor");
                x0 = solver.solve(b).expect("sweep solve");
            }
            if round >= 0 {
                best = best.min(start.elapsed().as_secs_f64());
            }
        }
        // The zero-allocation invariant must survive the pooled path:
        // parallel strips draw from per-worker thread-local scratch,
        // never from the plan workspace.
        let allocs = solver.workspace_allocations();
        assert_eq!(
            allocs, 0,
            "n={n} threads={threads}: pooled warm loop must stay \
             allocation-free (saw {allocs} pool misses)"
        );
        if threads == 1 {
            seq_round = best;
            seq_x0 = x0.clone();
        } else {
            // Deterministic strips: every thread count is bitwise equal
            // to the sequential result, not merely close.
            assert_eq!(
                x0, seq_x0,
                "n={n} threads={threads}: pooled solve diverged from sequential"
            );
        }
        let speedup = seq_round / best;
        if assert_speedup_floor && threads > 1 {
            // With the derived gate, fanning out must never *cost*:
            // small regions stay inline, so the worst case is parity
            // (0.95 leaves room for timer noise on a shared host).
            assert!(
                speedup >= 0.95,
                "n={n} threads={threads}: speedup_vs_seq {speedup:.2} < 0.95 — \
                 the derived min_work ({min_work}) failed to keep sub-crossover \
                 regions inline"
            );
        }
        emit_bench(
            "steady_state_exec",
            best,
            round_flops,
            &[
                ("n", n as f64),
                ("m", m as f64),
                ("threads", threads as f64),
                ("min_work", min_work as f64),
                ("speedup_vs_seq", speedup),
            ],
        );
    }
    println!(
        "exec sweep: n = {n}, threads {sweep:?}, min_work {min_work} \
         (rate-derived) — pooled path allocation-free, bitwise equal to sequential"
    );
}

/// Stable numeric label for `@@BENCH` records (which carry only f64
/// fields).
fn precision_index(p: Precision) -> f64 {
    match p {
        Precision::F64 => 0.0,
        Precision::F32 => 1.0,
        Precision::Mixed => 2.0,
    }
}

/// Mixed-precision sweep: the same warm refactor/solve stream through
/// f64, f32, and mixed plans. Emits one `@@BENCH` record per precision
/// with per-cycle refinement-iteration and stall-fallback counts, and
/// asserts every precision still answers (accuracy is pinned by the
/// refinement test tier; this measures the throughput side of the
/// trade).
fn bench_precision_sweep(m: usize, p: usize, rounds: usize) {
    let n = m * p;
    let systems: Vec<_> = (0..SYSTEMS as u64)
        .map(|s| workloads::spd_ar1_block(m, p, 0.55, 1100 + s))
        .collect();
    let rhs: Vec<_> = systems
        .iter()
        .map(|t| workloads::rhs_for_ones(t).0)
        .collect();

    let mut f64_round = f64::INFINITY;
    for precision in [Precision::F64, Precision::F32, Precision::Mixed] {
        let req = PlanRequest {
            precision,
            ..Default::default()
        };
        let mut solver =
            ToeplitzSolver::with_plan_request(&systems[0], &req).expect("precision factorization");
        let round_flops = (solver.plan().predicted_flops() * SYSTEMS as f64) as u64;
        solver.refactor(&systems[1]).expect("precision warm-up");
        let iters0 = metrics::total(Counter::RefineIterations);
        let stalls0 = metrics::total(Counter::MixedStallFallbacks);
        let mut best = f64::INFINITY;
        let mut cycles = 0u64;
        for round in -1i64..rounds as i64 {
            let start = Instant::now();
            for (t, b) in systems.iter().zip(&rhs) {
                solver.refactor(t).expect("precision refactor");
                let x = solver.solve(b).expect("precision solve");
                assert!(x[0].is_finite(), "precision {precision:?} produced NaN");
            }
            if round >= 0 {
                best = best.min(start.elapsed().as_secs_f64());
                cycles += SYSTEMS as u64;
            }
        }
        let refine_iters = metrics::total(Counter::RefineIterations) - iters0;
        let stalls = metrics::total(Counter::MixedStallFallbacks) - stalls0;
        if precision == Precision::F64 {
            f64_round = best;
        }
        emit_bench(
            "steady_state_precision",
            best,
            round_flops,
            &[
                ("n", n as f64),
                ("m", m as f64),
                ("precision", precision_index(precision)),
                (
                    "refine_iters_per_cycle",
                    refine_iters as f64 / cycles as f64,
                ),
                ("stall_fallbacks", stalls as f64),
                ("speedup_vs_f64", f64_round / best),
            ],
        );
        println!(
            "precision sweep: n = {n} {}: best round {:.3} ms, {:.2} refine \
             iters/cycle, {stalls} stall fallbacks",
            precision.as_str(),
            best * 1e3,
            refine_iters as f64 / cycles as f64,
        );
    }
}

/// Batched-dispatch throughput: `factor_batch` over the system stream
/// and `solve_batch` over a many-column RHS, against their looped
/// equivalents on the same plan. The batched paths amortize pool
/// dispatch and workspace warm-up per *batch* instead of per item.
fn bench_batch(m: usize, p: usize, rhs_cols: usize, rounds: usize) {
    let n = m * p;
    let systems: Vec<_> = (0..SYSTEMS as u64)
        .map(|s| workloads::spd_ar1_block(m, p, 0.55, 1300 + s))
        .collect();
    let threads = bs_matrix::par::current_num_threads();
    let req = PlanRequest {
        threads: Some(threads),
        ..Default::default()
    };
    let plan = bs_core::FactorPlan::new(&systems[0], &req).expect("batch plan");

    // factor_batch vs a loop of single executes (one warm workspace,
    // the same arithmetic).
    let mut batch_best = f64::INFINITY;
    let mut loop_best = f64::INFINITY;
    for round in -1i64..rounds as i64 {
        let start = Instant::now();
        let fs = plan.execute_batch(&systems).expect("batched factor");
        if round >= 0 {
            batch_best = batch_best.min(start.elapsed().as_secs_f64());
        }
        drop(fs);
        let start = Instant::now();
        let mut pw = PlanWorkspace::new();
        for t in &systems {
            let f = plan.execute(t, &mut pw).expect("looped factor");
            drop(f);
        }
        if round >= 0 {
            loop_best = loop_best.min(start.elapsed().as_secs_f64());
        }
    }
    let factor_flops = (plan.predicted_flops() * SYSTEMS as f64) as u64;
    emit_bench(
        "factor_batch",
        batch_best,
        factor_flops,
        &[
            ("n", n as f64),
            ("m", m as f64),
            ("systems", SYSTEMS as f64),
            ("threads", threads as f64),
            ("speedup_vs_looped", loop_best / batch_best),
        ],
    );

    // solve_batch vs solve_many on one factored system.
    let solver = ToeplitzSolver::with_plan_request(&systems[0], &req).expect("batch solver");
    let b = bs_matrix::Matrix::from_fn(n, rhs_cols, |i, j| ((i * 31 + j * 7) % 13) as f64 - 6.0);
    let mut sb_best = f64::INFINITY;
    let mut sm_best = f64::INFINITY;
    let mut x_batch = bs_matrix::Matrix::zeros(0, 0);
    let mut x_loop = bs_matrix::Matrix::zeros(0, 0);
    for round in -1i64..rounds as i64 {
        let start = Instant::now();
        x_batch = solver.solve_batch(&b).expect("batched solve");
        if round >= 0 {
            sb_best = sb_best.min(start.elapsed().as_secs_f64());
        }
        let start = Instant::now();
        x_loop = solver.solve_many(&b).expect("looped solve");
        if round >= 0 {
            sm_best = sm_best.min(start.elapsed().as_secs_f64());
        }
    }
    assert_eq!(
        x_batch.max_abs_diff(&x_loop),
        0.0,
        "n={n}: solve_batch must be bitwise identical to solve_many"
    );
    // Two triangular solves per column.
    let solve_flops = (2 * n * n * rhs_cols) as u64;
    emit_bench(
        "solve_batch",
        sb_best,
        solve_flops,
        &[
            ("n", n as f64),
            ("rhs", rhs_cols as f64),
            ("threads", threads as f64),
            ("speedup_vs_looped", sm_best / sb_best),
        ],
    );
    println!(
        "batch: n = {n}, {SYSTEMS} systems, {rhs_cols} rhs — factor_batch \
         {:.2}x vs looped, solve_batch {:.2}x vs solve_many",
        loop_best / batch_best,
        sm_best / sb_best
    );
}

fn main() {
    let timer = bs_bench::RunTimer::start("steady_state");
    let quick = quick_mode();
    let m = 4usize;
    let ps: &[usize] = if quick { &[4, 16] } else { &[4, 8, 16, 32] };

    let results: Vec<SizeResult> = ps
        .iter()
        .map(|&p| {
            let n = m * p;
            // Small sizes have fast rounds, so buy extra samples where
            // the assertion below needs the tightest min.
            let rounds = if n <= 32 {
                200
            } else if n <= 64 {
                80
            } else {
                40
            };
            bench_size(m, p, rounds)
        })
        .collect();

    // The headline assertion lives at the smallest size, where the
    // per-cycle fixed cost (allocations + zero-fills) is a measurable
    // fraction of the cycle. Larger sizes only need to stay sane.
    let head = &results[0];
    assert!(
        head.warm_round < head.percall_round,
        "n={}: warm path ({:.6}s/round) must beat the per-call-allocation \
         baseline ({:.6}s/round)",
        head.n,
        head.warm_round,
        head.percall_round
    );
    // At larger sizes the paths converge (flops dominate), so this is
    // only a catastrophic-regression tripwire: generous enough that a
    // noisy-neighbor burst on a shared host cannot fire it spuriously.
    for r in &results[1..] {
        assert!(
            r.warm_round < 1.25 * r.percall_round,
            "n={}: warm path ({:.6}s/round) regressed more than 25% against \
             the per-call-allocation baseline ({:.6}s/round)",
            r.n,
            r.warm_round,
            r.percall_round
        );
    }

    println!(
        "steady state: m = {m}, n in {:?}, {SYSTEMS} systems per round, best round kept",
        results.iter().map(|r| r.n).collect::<Vec<_>>()
    );
    let rows: Vec<Vec<String>> = results
        .iter()
        .flat_map(|r| {
            let cycles = SYSTEMS as f64;
            [
                vec![
                    format!("{}", r.n),
                    "warm (plan + workspace reuse)".into(),
                    ms(r.warm_round / cycles),
                    "0".into(),
                    format!("{:.2}x", r.percall_round / r.warm_round),
                ],
                vec![
                    String::new(),
                    "cold (fresh solver per system)".into(),
                    ms(r.cold_round / cycles),
                    format!("{}", r.cold_allocs_per_cycle),
                    format!("{:.2}x", r.percall_round / r.cold_round),
                ],
                vec![
                    String::new(),
                    "per-call allocation (no pool)".into(),
                    ms(r.percall_round / cycles),
                    format!("{}", r.percall_allocs_per_cycle),
                    "1.00x".into(),
                ],
            ]
        })
        .collect();
    print_table(
        "steady-state factor/solve",
        &["n", "path", "per cycle (ms)", "allocs/cycle", "vs per-call"],
        &rows,
    );
    for r in &results {
        println!(
            "n = {}: workspace high-water {} elements; warm speedup {:.2}x \
             vs per-call, {:.2}x vs cold solver",
            r.n,
            r.high_water,
            r.percall_round / r.warm_round,
            r.cold_round / r.warm_round
        );
    }

    for r in &results {
        let total_flops = (r.per_factor_flops * r.iters as f64) as u64;
        let rounds = r.iters / SYSTEMS;
        emit_bench(
            "steady_state_warm",
            r.warm_round * rounds as f64,
            total_flops,
            &[
                ("n", r.n as f64),
                ("m", r.m as f64),
                ("iters", r.iters as f64),
                ("allocations", 0.0),
                ("high_water_elems", r.high_water as f64),
                ("speedup_vs_percall", r.percall_round / r.warm_round),
                ("speedup_vs_cold", r.cold_round / r.warm_round),
            ],
        );
        emit_bench(
            "steady_state_cold",
            r.cold_round * rounds as f64,
            total_flops,
            &[
                ("n", r.n as f64),
                ("m", r.m as f64),
                ("iters", r.iters as f64),
                ("allocs_per_cycle", r.cold_allocs_per_cycle as f64),
            ],
        );
        emit_bench(
            "steady_state_percall",
            r.percall_round * rounds as f64,
            total_flops,
            &[
                ("n", r.n as f64),
                ("m", r.m as f64),
                ("iters", r.iters as f64),
                ("allocs_per_cycle", r.percall_allocs_per_cycle as f64),
            ],
        );
    }

    // Exec sweep at two sizes: n = 64 is below the dispatch crossover
    // (the derived min_work must keep it at sequential parity — the
    // asserted floor), n = 256 carries enough work per strip for the
    // fan-out to engage and pay.
    bench_exec_sweep(m, 16, if quick { 20 } else { 60 }, true);
    bench_exec_sweep(m, 64, if quick { 8 } else { 20 }, false);

    // Mixed-precision throughput sweep + batched-dispatch throughput.
    // n = 64 is overhead-dominated (demotion + refinement cost shows);
    // n = 256 gives the f32 kernels enough work for the lane-width
    // payoff to surface in end-to-end factor time.
    bench_precision_sweep(m, 16, if quick { 20 } else { 60 });
    bench_precision_sweep(m, 64, if quick { 6 } else { 20 });
    bench_batch(m, 16, 32, if quick { 10 } else { 30 });

    timer.finish();
}
