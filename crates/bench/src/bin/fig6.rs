//! Figure 6 / Experiment 1 (§7.1.5): time to factor a 4096×4096 point
//! Toeplitz matrix (m = 1) on 16 processors, varying the number of
//! adjacent blocks `b` assigned to each processor (Version 2; `b = 1`
//! is Version 1).
//!
//! Paper shape: sharp initial fall as `b` grows (the per-step shift
//! traffic drops by a factor of `b`), best time near `b = 16`, rising
//! again at `b = 32, 64` (lost parallelism outweighs saved
//! communication).
//!
//! Run: `cargo run -p bs-bench --release --bin fig6`

use bs_bench::{ms, print_table};
use bs_perfmodel::Rep;
use bs_simulator::analytic::{simulate, SimConfig};
use bs_simulator::{Scheme, T3DModel};

fn main() {
    let timer = bs_bench::RunTimer::start("fig6");
    let n = 4096;
    let m = 1;
    let np = 16;
    let model = T3DModel::default();
    let mut rows = Vec::new();
    let mut best = (0usize, f64::INFINITY);
    for b in [1usize, 2, 4, 8, 16, 32, 64] {
        let r = simulate(
            &SimConfig {
                n,
                m,
                np,
                scheme: Scheme::V2 { b },
                rep: Rep::VY2,
            },
            &model,
        );
        bs_bench::charge_model_flops(r.flops);
        if r.total < best.1 {
            best = (b, r.total);
        }
        rows.push(vec![
            b.to_string(),
            if b == 1 { "V1" } else { "V2" }.to_string(),
            ms(r.total),
            ms(r.shift),
            ms(r.apply),
            ms(r.broadcast),
            ms(r.panel),
            ms(r.barrier),
        ]);
    }
    print_table(
        "Fig. 6 — 4096x4096 point Toeplitz (m=1), NP=16: factor time vs b",
        &[
            "b",
            "scheme",
            "total ms",
            "shift ms",
            "apply ms",
            "bcast ms",
            "panel ms",
            "barrier ms",
        ],
        &rows,
    );
    println!(
        "\nbest b = {} ({:.3} ms); paper: optimum at b = 16, rising at 32/64",
        best.0,
        best.1 * 1e3,
    );
    timer.finish();
}
