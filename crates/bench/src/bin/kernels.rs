//! Microkernel engine bench: measured GEMM / SYRK / TRSM rates per
//! dispatched ISA.
//!
//! The fig. 10 experiment shows the *algorithm-level* payoff of
//! retiling; this binary characterizes the *kernel-level* rates that
//! payoff rests on. For each kernel choice (`portable`, then the
//! machine's native SIMD dispatch when it differs) it sweeps
//!
//! - the dominant Schur trailing-update GEMM shape
//!   `C(m_s x n) += A(m_s x m_s) B(m_s x n)` over the fig. 10 block
//!   sizes,
//! - square GEMM at the fig. 10 quick problem sizes,
//! - the SYRK and TRSM shapes the factorization's panel step runs,
//!
//! emitting one `@@BENCH` record per (kernel, shape) with the achieved
//! Gflop/s. The run asserts the native kernel is no slower than the
//! portable one on the headline square GEMM — and at least 2x on
//! AVX2/AVX-512 hardware, where the FMA microkernel retires 4+ flops
//! per cycle the scalar kernel cannot.
//!
//! Run: `cargo run -p bs-bench --release --bin kernels [--quick]`

use bs_bench::{emit_bench, print_table, quick_mode, time_it};
use bs_matrix::kernel::{self, Choice};
use bs_matrix::{gemm, syrk, trsm, Matrix, Side, Trans, Uplo};

/// Fig. 10 retiling sweep (the trailing-update block sizes).
const BLOCK_SIZES: [usize; 6] = [1, 2, 4, 8, 16, 32];

/// Best-of-`reps` wall time of `f`, re-run until the timer is off the
/// noise floor.
fn best_of(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let ((), run) = time_it(&mut f);
        best = best.min(run.wall_s.max(1.0e-9));
    }
    best
}

fn fill(seed: u64) -> impl FnMut(usize, usize) -> f64 {
    let mut state = seed | 1;
    move |_, _| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        ((state % 1000) as f64 - 500.0) / 250.0
    }
}

/// A doubly diagonally-dominant lower triangle: safe to solve against
/// at bench sizes without the exponential conditioning of a random
/// triangle.
fn dd_lower(n: usize, seed: u64) -> Matrix {
    let mut f = fill(seed);
    let mut l = Matrix::from_fn(n, n, |i, j| if j <= i { 0.1 * f(i, j) } else { 0.0 });
    for i in 0..n {
        let row: f64 = (0..i).map(|j| l[(i, j)].abs()).sum();
        let col: f64 = (i + 1..n).map(|k| l[(k, i)].abs()).sum();
        l[(i, i)] = 1.0 + row + col;
    }
    l
}

struct Measured {
    label: String,
    flops: f64,
    gflops: f64,
}

/// Rate of one timed kernel shape, recorded and tabled.
fn measure(
    isa: &str,
    label: &str,
    flops: f64,
    reps: usize,
    rows: &mut Vec<Measured>,
    f: impl FnMut(),
) {
    let secs = best_of(reps, f);
    let gflops = flops / secs / 1e9;
    emit_bench(
        &format!("kernels_{label}_{isa}"),
        secs,
        flops as u64,
        &[("gflops", gflops)],
    );
    rows.push(Measured {
        label: label.to_string(),
        flops,
        gflops,
    });
}

/// Sweep every shape for one kernel choice; returns the headline
/// square-GEMM rate used for the cross-ISA assertions.
fn sweep(choice: Choice, quick: bool, table: &mut Vec<Vec<String>>) -> f64 {
    kernel::set_override(Some(choice));
    let isa = kernel::active_isa_name();
    let reps = if quick { 3 } else { 5 };
    let mut rows = Vec::new();

    // Trailing-update GEMM over the fig. 10 block sizes.
    let trailing = if quick { 256 } else { 512 };
    for ms in BLOCK_SIZES {
        let a = Matrix::from_fn(ms, ms, fill(11));
        let b = Matrix::from_fn(ms, trailing, fill(13));
        let mut c = Matrix::zeros(ms, trailing);
        let flops = 2.0 * (ms * ms * trailing) as f64;
        // Iterate tiny shapes so each sample is off the timer floor.
        let iters = ((2.0e6 / flops).ceil() as usize).clamp(1, 65536);
        measure(
            isa,
            &format!("update_ms{ms}"),
            flops * iters as f64,
            reps,
            &mut rows,
            || {
                for _ in 0..iters {
                    gemm(1.0, a.rf(), Trans::No, b.rf(), Trans::No, 1.0, c.mt());
                }
            },
        );
    }

    // Headline square GEMM at the fig. 10 quick sizes.
    let sizes: &[usize] = if quick { &[128, 256] } else { &[256, 512] };
    let mut headline = 0.0;
    for &n in sizes {
        let a = Matrix::from_fn(n, n, fill(17));
        let b = Matrix::from_fn(n, n, fill(19));
        let mut c = Matrix::zeros(n, n);
        let flops = 2.0 * (n * n * n) as f64;
        measure(isa, &format!("gemm_n{n}"), flops, reps, &mut rows, || {
            gemm(1.0, a.rf(), Trans::No, b.rf(), Trans::No, 0.0, c.mt());
        });
        headline = rows.last().map(|r| r.gflops).unwrap_or(0.0);
    }

    // Panel-step SYRK: C(n x n) lower <- A(n x k) Aᵀ.
    let (sn, sk) = if quick { (192, 96) } else { (384, 192) };
    let a = Matrix::from_fn(sn, sk, fill(23));
    let mut c = Matrix::zeros(sn, sn);
    let flops = (sn * sn * sk + sn * sn) as f64;
    measure(isa, "syrk", flops, reps, &mut rows, || {
        syrk(Uplo::Lower, Trans::No, 1.0, a.rf(), 0.0, c.mt());
    });

    // Blocked TRSM: L X = B with a well-conditioned lower triangle.
    let (tn, tcols) = if quick { (192, 192) } else { (384, 384) };
    let l = dd_lower(tn, 29);
    let b0 = Matrix::from_fn(tn, tcols, fill(31));
    let mut b = Matrix::zeros(tn, tcols);
    let flops = (tn * tn * tcols) as f64;
    measure(isa, "trsm", flops, reps, &mut rows, || {
        b.mt().copy_from(b0.rf());
        trsm(
            Side::Left,
            Uplo::Lower,
            Trans::No,
            false,
            1.0,
            l.rf(),
            b.mt(),
        )
        .unwrap();
    });

    for r in rows {
        table.push(vec![
            isa.to_string(),
            r.label,
            format!("{:.2e}", r.flops),
            format!("{:.3}", r.gflops),
        ]);
    }
    headline
}

/// f32 vs f64 headline square GEMM for one kernel choice, measured as
/// alternating back-to-back pairs: the scalar-generic engine runs the
/// same blocked drivers over `Matrix<f32>`, where each SIMD lane holds
/// twice the elements — the rate should roughly double. The two
/// precisions share every rep's machine conditions, so the ratio the
/// cross-precision assertion checks is insulated from the host-load
/// drift that separate sweeps minutes apart would fold in.
fn sweep_f32(choice: Choice, quick: bool, table: &mut Vec<Vec<String>>) -> (f64, f64) {
    kernel::set_override(Some(choice));
    let isa = kernel::active_isa_name();
    let reps = if quick { 4 } else { 8 };
    let n = if quick { 256 } else { 512 };
    let a = Matrix::from_fn(n, n, fill(17));
    let b = Matrix::from_fn(n, n, fill(19));
    let mut c = Matrix::zeros(n, n);
    let a32 = a.convert::<f32>();
    let b32 = b.convert::<f32>();
    let mut c32 = Matrix::<f32>::zeros(n, n);
    let flops = 2.0 * (n * n * n) as f64;
    let mut best64 = f64::INFINITY;
    let mut best32 = f64::INFINITY;
    for _ in 0..reps {
        best64 = best64.min(best_of(1, || {
            gemm(1.0, a.rf(), Trans::No, b.rf(), Trans::No, 0.0, c.mt());
        }));
        best32 = best32.min(best_of(1, || {
            gemm(
                1.0f32,
                a32.rf(),
                Trans::No,
                b32.rf(),
                Trans::No,
                0.0,
                c32.mt(),
            );
        }));
    }
    let gflops64 = flops / best64 / 1e9;
    let gflops32 = flops / best32 / 1e9;
    emit_bench(
        &format!("kernels_gemm_f32_n{n}_{isa}"),
        best32,
        flops as u64,
        &[
            ("gflops", gflops32),
            ("speedup_vs_f64", gflops32 / gflops64),
        ],
    );
    table.push(vec![
        isa.to_string(),
        format!("gemm_f32_n{n}"),
        format!("{flops:.2e}"),
        format!("{gflops32:.3}"),
    ]);
    (gflops64, gflops32)
}

fn main() {
    let timer = bs_bench::RunTimer::start("kernels");
    let quick = quick_mode();
    let mut table = Vec::new();

    let portable = sweep(Choice::Portable, quick, &mut table);
    let native_isa = kernel::native_isa();
    let native = if native_isa == kernel::Isa::Portable {
        portable
    } else {
        sweep(Choice::Native, quick, &mut table)
    };
    let (paired_f64, native_f32) = sweep_f32(
        if native_isa == kernel::Isa::Portable {
            Choice::Portable
        } else {
            Choice::Native
        },
        quick,
        &mut table,
    );
    kernel::set_override(None);

    print_table(
        "Kernel engine — measured rates per dispatched ISA",
        &["isa", "shape", "flops", "Gflop/s"],
        &table,
    );
    println!(
        "\nnative dispatch: {} (headline square GEMM {native:.3} Gflop/s vs portable {portable:.3})",
        native_isa.name()
    );

    assert!(
        native >= portable * 0.95,
        "native kernel ({native:.3} Gflop/s) slower than portable ({portable:.3} Gflop/s)"
    );
    if matches!(native_isa, kernel::Isa::Avx2 | kernel::Isa::Avx512) {
        assert!(
            native >= 2.0 * portable,
            "SIMD GEMM must be at least 2x the scalar kernel on AVX2/AVX-512 \
             hardware: got {native:.3} vs {portable:.3} Gflop/s"
        );
    }
    println!(
        "f32 headline GEMM: {native_f32:.3} Gflop/s ({:.2}x f64 paired at {paired_f64:.3})",
        native_f32 / paired_f64
    );
    if native_isa != kernel::Isa::Portable {
        // The lane-width payoff of the scalar-generic engine: f32
        // packs twice the elements per vector register, so the native
        // SIMD microkernel must clear at least 1.5x the f64 rate
        // (2x ideal, minus packing and tail overhead). Compared against
        // the pair-interleaved f64 rate, not the earlier sweep's, so
        // host-load drift between the sweeps cannot fail the gate.
        assert!(
            native_f32 >= 1.5 * paired_f64,
            "f32 GEMM ({native_f32:.3} Gflop/s) must be at least 1.5x the f64 \
             rate ({paired_f64:.3} Gflop/s) on the native SIMD kernel"
        );
    }
    timer.finish();
}
