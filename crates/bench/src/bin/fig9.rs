//! Figure 9 (§7.1.7, final experiment): 1024×1024 block Toeplitz at
//! block sizes m = 2 and m = 4, factor time vs number of processors.
//!
//! Paper shape: the Schur complexity grows linearly with m, so m = 4
//! does twice the arithmetic of m = 2 — yet for *large* NP it is
//! faster, because (a) the 4-word T3D cache line makes the m = 4
//! kernels more efficient per flop ("the increase ... is not twice"),
//! and (b) halving the number of Schur steps halves the number of
//! synchronizations, which dominate at scale. For small NP, m = 2
//! wins.
//!
//! Run: `cargo run -p bs-bench --release --bin fig9`

use bs_bench::{ms, print_table};
use bs_perfmodel::Rep;
use bs_simulator::analytic::{simulate, SimConfig};
use bs_simulator::{Scheme, T3DModel};

fn main() {
    let timer = bs_bench::RunTimer::start("fig9");
    let n = 1024;
    let model = T3DModel::default();
    let mut rows = Vec::new();
    let mut crossover: Option<usize> = None;
    for np in [1usize, 2, 4, 8, 16, 32, 64] {
        let t = |m: usize| {
            let r = simulate(
                &SimConfig {
                    n,
                    m,
                    np,
                    scheme: Scheme::V1,
                    rep: Rep::VY2,
                },
                &model,
            );
            bs_bench::charge_model_flops(r.flops);
            r.total
        };
        let t2 = t(2);
        let t4 = t(4);
        if t4 < t2 && crossover.is_none() {
            crossover = Some(np);
        }
        rows.push(vec![
            np.to_string(),
            ms(t2),
            ms(t4),
            format!("{:.3}", t4 / t2),
            if t4 < t2 { "m=4" } else { "m=2" }.to_string(),
        ]);
    }
    print_table(
        "Fig. 9 — 1024x1024 block Toeplitz, m=2 vs m=4: factor time vs NP",
        &["NP", "m=2 ms", "m=4 ms", "t4/t2", "winner"],
        &rows,
    );
    match crossover {
        Some(np) => println!(
            "\ncrossover at NP = {np}; paper: m=4 slower for small NP, faster once synchronization dominates"
        ),
        None => println!("\nno crossover observed up to NP = 64"),
    }
    timer.finish();
}
