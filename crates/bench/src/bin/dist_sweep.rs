//! Measured Fig. 6–9: the three T3D data distributions executed for
//! real on the sharded wall-clock backend, swept over NP, against the
//! calibrated analytic model's predictions in the same units.
//!
//! For each (m, p) point the sweep measures
//!
//! - the sequential `bs-core` baseline (ExecPolicy::sequential, the
//!   denominator of every speedup),
//! - each valid scheme at each NP: best-of-k measured wall seconds,
//!   total comm volume, per-rank comm wait,
//! - the calibrated model's predicted seconds for the same (scheme,
//!   NP) — compute rates from the kernel RateTable, message costs from
//!   transport micro-benchmarks — so measured and analytic curves plot
//!   in one frame (the units fix of PR 10),
//!
//! and emits one `@@BENCH` record per (point, scheme, NP) plus one
//! `dist_seq` record per point.
//!
//! Correctness asserts (always on): every sharded factor matches the
//! sequential one to the paper's §8 residual tolerance, and one
//! configuration is run twice to confirm byte-for-byte reproducible
//! factors. Performance asserts (speedup ≥ 1.5 at NP=4 for n ≥ 512;
//! measured-vs-predicted scheme ranking agreement on ≥ 2 points) are
//! gated on `available_parallelism() ≥ 4`: rank threads cannot
//! physically overlap on fewer cores, so on starved hosts the sweep
//! still *measures* and *records* but prints a waiver instead of
//! failing (same convention as steady_state's speedup floor).
//!
//! Run: `cargo run -p bs-bench --release --bin dist_sweep [--quick]`

use bs_bench::{emit_bench, ms, print_table, quick_mode};
use bs_core::rep::RepKind;
use bs_simulator::analytic::{simulate, SimConfig};
use bs_simulator::{factor_sharded, CalibratedCost, Scheme, ShardOptions};
use bs_toeplitz::workloads;
use std::time::Instant;

/// Schemes exercised at one NP (must divide evenly into the sweep's
/// block sizes; V3 needs spread | np and spread | m).
fn schemes_for(m: usize, np: usize) -> Vec<Scheme> {
    let mut out = vec![Scheme::V1];
    if np > 1 {
        out.push(Scheme::V2 { b: 2 });
        out.push(Scheme::V2 { b: 4 });
        if np.is_multiple_of(2) && m.is_multiple_of(2) {
            out.push(Scheme::V3 { spread: 2 });
        }
    }
    out
}

/// `@@BENCH`-safe scheme tag: `v1`, `v2b2`, `v3s2`.
fn tag(scheme: Scheme) -> String {
    match scheme {
        Scheme::V1 => "v1".to_string(),
        Scheme::V2 { b } => format!("v2b{b}"),
        Scheme::V3 { spread } => format!("v3s{spread}"),
    }
}

fn main() {
    let quick = quick_mode();
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    let reps = if quick { 2 } else { 3 };
    let points: Vec<(usize, usize)> = if quick {
        vec![(4, 16), (8, 16)]
    } else {
        vec![(8, 64), (16, 32), (16, 64)]
    };
    let mut nps = vec![1usize, 2, 4];
    if cores >= 8 && !quick {
        nps.push(8);
    }
    let max_np = *nps.last().unwrap();

    println!("dist_sweep: measured sharded Schur vs calibrated analytic model");
    println!(
        "  host cores online: {cores} (perf asserts {})",
        if cores >= 4 { "armed" } else { "waived" }
    );

    // Calibrate once: kernel RateTable + transport micro-benchmarks.
    let model = CalibratedCost::for_host();
    let comm = model.comm();
    println!(
        "  calibrated transport: p2p latency {:.2} µs, bandwidth {:.2} GB/s, barrier {:.2} µs/rank",
        comm.p2p_latency_s * 1e6,
        comm.p2p_bytes_per_s / 1e9,
        comm.barrier_per_rank_s * 1e6
    );

    let mut rank_agreements = 0usize;
    let mut speedup_floor_met = true;
    let mut rows: Vec<Vec<String>> = Vec::new();

    for &(m, p) in &points {
        let n = m * p;
        let t = workloads::random_spd_block(m, p, (7 * m + p) as u64);
        let tol = 1e-8 * t.norm_inf().max(1.0);

        // Sequential baseline: the single-address-space engine with a
        // sequential policy — the denominator of every speedup.
        let seq_opts = bs_core::SchurOptions {
            exec: bs_matrix::ExecPolicy::sequential(),
            ..Default::default()
        };
        let mut seq_best = f64::INFINITY;
        let mut seq_r = None;
        for _ in 0..reps {
            let t0 = Instant::now();
            let f = bs_core::factor_spd(&t, &seq_opts).expect("SPD factor");
            seq_best = seq_best.min(t0.elapsed().as_secs_f64());
            seq_r = Some(f.r.clone());
        }
        let seq_r = seq_r.unwrap();
        let model_flops = bs_perfmodel::total_factor_flops(n, m) as u64;
        emit_bench(
            "dist_seq",
            seq_best,
            model_flops,
            &[("n", n as f64), ("m", m as f64)],
        );
        rows.push(vec![
            format!("{m}x{p}"),
            "seq".into(),
            "1".into(),
            ms(seq_best),
            "-".into(),
            "-".into(),
            "-".into(),
        ]);

        // (scheme, np=max) measured and predicted times, for the
        // crossover-ranking comparison.
        let mut measured_at_max: Vec<(Scheme, f64)> = Vec::new();
        let mut predicted_at_max: Vec<(Scheme, f64)> = Vec::new();

        for &np in &nps {
            for scheme in schemes_for(m, np) {
                let opts = ShardOptions::new(scheme, np);
                let mut best = f64::INFINITY;
                let mut volume = 0usize;
                let mut wait_s = 0.0f64;
                for r in 0..reps {
                    let run = factor_sharded(&t, &opts);
                    if r == 0 {
                        let diff = run.r.max_abs_diff(&seq_r);
                        assert!(
                            diff < tol,
                            "m={m} p={p} np={np} {scheme:?}: residual {diff:e} over {tol:e}"
                        );
                    }
                    if run.wall_s < best {
                        best = run.wall_s;
                        volume = run.comm_volume();
                        wait_s = run.comm_wait_s.iter().cloned().fold(0.0f64, f64::max);
                    }
                }
                let sim = simulate(
                    &SimConfig {
                        n,
                        m,
                        np,
                        scheme,
                        rep: bs_perfmodel::Rep::VY2,
                    },
                    &model,
                );
                let speedup = seq_best / best;
                if np == max_np {
                    measured_at_max.push((scheme, best));
                    predicted_at_max.push((scheme, sim.total));
                    if n >= 512 && cores >= 4 && speedup < 1.5 {
                        speedup_floor_met = false;
                    }
                }
                emit_bench(
                    &format!("dist_{}", tag(scheme)),
                    best,
                    model_flops,
                    &[
                        ("n", n as f64),
                        ("m", m as f64),
                        ("np", np as f64),
                        ("speedup_vs_seq", speedup),
                        ("comm_bytes", volume as f64),
                        ("comm_wait_s", wait_s),
                        ("predicted_s", sim.total),
                    ],
                );
                rows.push(vec![
                    format!("{m}x{p}"),
                    scheme.label(),
                    np.to_string(),
                    ms(best),
                    format!("{speedup:.2}"),
                    ms(sim.total),
                    format!("{:.1}", volume as f64 / 1024.0),
                ]);
            }
        }

        // Crossover ranking: does the measured fastest scheme at the
        // largest NP match the calibrated model's pick?
        let argmin = |v: &[(Scheme, f64)]| {
            v.iter()
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .map(|e| e.0)
                .unwrap()
        };
        let m_best = argmin(&measured_at_max);
        let p_best = argmin(&predicted_at_max);
        let agree = m_best == p_best;
        rank_agreements += agree as usize;
        println!(
            "  ({m},{p}) @NP={max_np}: measured fastest {}, model predicts {} -> {}",
            m_best.label(),
            p_best.label(),
            if agree { "agree" } else { "disagree" }
        );
    }

    print_table(
        "measured sharded Schur (best-of-k wall) vs calibrated prediction",
        &[
            "m x p", "scheme", "NP", "wall ms", "speedup", "pred ms", "comm KiB",
        ],
        &rows,
    );

    // Bitwise reproducibility: same (matrix, scheme, NP, rep, kernel)
    // twice must produce byte-identical factors.
    let (m, p) = points[0];
    let t = workloads::random_spd_block(m, p, 99);
    let opts = ShardOptions::new(Scheme::V2 { b: 2 }, 2.min(max_np));
    let bits =
        |r: &bs_matrix::Matrix| -> Vec<u64> { r.as_slice().iter().map(|v| v.to_bits()).collect() };
    let a = factor_sharded(&t, &opts);
    let b = factor_sharded(&t, &opts);
    assert_eq!(
        bits(&a.r),
        bits(&b.r),
        "sharded factor must be bitwise reproducible for a fixed config"
    );
    println!(
        "\nbitwise reproducibility: OK ({}x{} V2(b=2) NP={})",
        m, p, opts.np
    );

    if cores >= 4 && !quick {
        assert!(
            speedup_floor_met,
            "speedup_vs_seq < 1.5 at NP={max_np} for some n >= 512 point"
        );
        assert!(
            rank_agreements >= 2,
            "measured scheme ranking agreed with the calibrated model on only \
             {rank_agreements} of {} points (need 2)",
            points.len()
        );
        println!("perf asserts: speedup floor and crossover ranking OK ({rank_agreements}/{} points agree)", points.len());
    } else {
        println!(
            "perf asserts: waived ({} cores online, {} mode) — measured records still emitted; \
             ranking agreement {rank_agreements}/{}",
            cores,
            if quick { "quick" } else { "full" },
            points.len()
        );
    }
    println!("representation: {:?}", RepKind::VY2);
}
