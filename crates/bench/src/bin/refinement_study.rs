//! §8 claims about iterative refinement, quantified:
//!
//! 1. "typically two steps of iterative refinement are sufficient" on
//!    singular-minor Toeplitz systems perturbed with `δ = ε^{1/3}`;
//! 2. "the iterative refinement technique we propose requires
//!    significantly lesser work than the preconditioned
//!    conjugate-gradient algorithm per iteration" — both use the same
//!    perturbed `LDLᵀ` factorization; refinement does one Toeplitz
//!    matvec + one factor solve per step, PCG adds the Krylov
//!    bookkeeping (extra inner products and vector updates).
//!
//! Run: `cargo run -p bs-bench --release --bin refinement_study [--quick]`

use bs_baselines::pcg;
use bs_bench::{print_table, quick_mode, sci};
use bs_core::{factor_indefinite, solve_refined, IndefOptions, RefineOptions};
use bs_toeplitz::workloads;

fn main() {
    let timer = bs_bench::RunTimer::start("refinement_study");
    let sizes: &[usize] = if quick_mode() {
        &[64, 128]
    } else {
        &[64, 256, 1024]
    };
    let seeds = 0..8u64;

    let mut rows = Vec::new();
    for &n in sizes {
        for seed in seeds.clone() {
            let t = workloads::singular_minor_scalar(n, 1000 + seed);
            let f = match factor_indefinite(&t, &IndefOptions::default()) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("n={n} seed={seed}: {e}");
                    continue;
                }
            };
            let (b, x_true) = workloads::rhs_for_ones(&t);

            // Refinement: count flops, plus the *marginal* cost of one
            // refinement iteration (residual + factor solve), which is
            // the honest per-iteration comparison with PCG.
            bs_matrix::flops::reset();
            let res = solve_refined(&t, &f, &b, &RefineOptions::default()).unwrap();
            let ref_flops = bs_matrix::flops::get();
            let (_, ref_iter_flops) = bs_matrix::flops::measure(|| {
                let r = t.residual(&res.x, &b);
                let _ = f.solve(&r).unwrap();
            });
            let err_ref: f64 = res
                .x
                .iter()
                .zip(&x_true)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
            // "Meaningful" steps: corrections above the roundoff floor.
            let significant = res
                .correction_norms
                .iter()
                .filter(|&&c| c > 1e3 * f64::EPSILON * (n as f64).sqrt())
                .count();

            // PCG with the same factorization as preconditioner.
            bs_matrix::flops::reset();
            let cg = pcg(|v| t.matvec(v), |r| f.solve(r).unwrap(), &b, 1e-13, 100);
            let pcg_flops = bs_matrix::flops::get();
            let err_pcg: f64 =
                cg.x.iter()
                    .zip(&x_true)
                    .map(|(a, b)| (a - b).abs())
                    .fold(0.0, f64::max);

            rows.push(vec![
                n.to_string(),
                seed.to_string(),
                f.perturbations.len().to_string(),
                significant.to_string(),
                sci(err_ref),
                cg.iterations.to_string(),
                sci(err_pcg),
                format!(
                    "{:.3}",
                    (pcg_flops as f64 / cg.iterations.max(1) as f64) / ref_iter_flops as f64
                ),
                format!("{:.2}", pcg_flops as f64 / ref_flops as f64),
            ]);
        }
    }
    print_table(
        "§8 — refinement vs preconditioned CG on singular-minor Toeplitz systems",
        &[
            "n",
            "seed",
            "perts",
            "refine steps",
            "refine err",
            "PCG iters",
            "PCG err",
            "PCG/refine flops per iter",
            "PCG/refine total flops",
        ],
        &rows,
    );
    println!(
        "\npaper: two refinement steps typically suffice; refinement is cheaper per iteration\n\
         than PCG with the same perturbed-LDL^T preconditioner (the per-iteration gap is the\n\
         Krylov bookkeeping, O(n) on top of the shared matvec + solve, so the ratio tends to\n\
         1 from above as n grows; the bigger win is needing fewer iterations)"
    );
    timer.finish();
}
