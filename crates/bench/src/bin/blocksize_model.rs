//! The §6.5 / §9 block-size analysis, done the way the paper did it on
//! the Cray Y-MP: *empirically characterize* the performance of the
//! computational primitives at the shapes the algorithm uses, then
//! *predict* the factorization time for any (n, m_s) from the analytic
//! flop model — and check the prediction against measured runs.
//!
//! "The performance trends observed were predictable by a block size
//! analysis based on an empirical characterization of the performance
//! of the BLAS3 primitives on products with the shapes of interest."
//!
//! Run: `cargo run -p bs-bench --release --bin blocksize_model [--quick]`

use bs_bench::{print_table, quick_mode, time_it};
use bs_core::panel::factor_panel;
use bs_core::{factor_spd, RepKind, SchurOptions};
use bs_matrix::ldlt::Signature;
use bs_matrix::Matrix;
use bs_perfmodel::{apply_flops, blocking_flops, Rep};
use bs_toeplitz::workloads;

/// Measured rates (flops/sec) of the two phase kernels at block size m.
struct Rates {
    blocking: f64,
    apply: f64,
}

fn make_panel(m: usize) -> Matrix {
    let mut state = 0xABCDu64;
    let mut rnd = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        ((state % 1000) as f64 - 500.0) / 500.0
    };
    let mut p = Matrix::zeros(2 * m, m);
    for j in 0..m {
        for i in 0..=j {
            p[(i, j)] = rnd() * 0.5;
        }
        p[(j, j)] = 2.0 + rnd().abs();
        // Keep the lower column's norm well below the pivot so the
        // hyperbolic norms stay positive at every block size.
        let damp = 0.5 / (m as f64).sqrt();
        for i in 0..m {
            p[(m + i, j)] = rnd() * damp;
        }
    }
    p
}

/// Characterize the panel-production and trailing-update kernels.
fn characterize(m: usize, reps: usize) -> Rates {
    let w = Signature::hyperbolic(m);
    let p0 = make_panel(m);

    // Blocking rate: repeat the panel factorization.
    let iters = (2048 / m).max(8);
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let (_, run) = time_it(|| {
            for _ in 0..iters {
                let mut p = p0.clone();
                let _ = factor_panel(p.mt(), &w, RepKind::VY2, 0, 1e-13, 1.0).unwrap();
            }
        });
        best = best.min(run.wall_s);
    }
    let blocking = blocking_flops(Rep::VY2, m, m) * iters as f64 / best;

    // Apply rate: one block reflector against a wide trailing strip.
    let q_blocks = (2048 / m).max(4);
    let mut panel = p0.clone();
    let refl = factor_panel(panel.mt(), &w, RepKind::VY2, 0, 1e-13, 1.0).unwrap();
    let gu0 = Matrix::from_fn(m, q_blocks * m, |i, j| ((i * 13 + j * 7) % 19) as f64 - 9.0);
    let gl0 = gu0.clone();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let mut gu = gu0.clone();
        let mut gl = gl0.clone();
        let (_, run) =
            time_it(|| refl.apply_split(gu.mt(), gl.mt(), &bs_matrix::ExecPolicy::sequential()));
        best = best.min(run.wall_s);
    }
    let apply = apply_flops(Rep::VY2, m, m, q_blocks) / best;
    Rates { blocking, apply }
}

/// Predict the factorization time from the analytic flop model and the
/// measured rates.
fn predict(n: usize, m: usize, r: &Rates) -> f64 {
    let p = n / m;
    let mut total = 0.0;
    for s in 1..p {
        total += blocking_flops(Rep::VY2, m, m) / r.blocking;
        let trailing = p - s - 1;
        if trailing > 0 {
            total += apply_flops(Rep::VY2, m, m, trailing) / r.apply;
        }
    }
    total
}

fn main() {
    let timer = bs_bench::RunTimer::start("blocksize_model");
    let quick = quick_mode();
    let reps = if quick { 2 } else { 4 };
    let block_sizes = [1usize, 2, 4, 8, 16, 32];
    let sizes: &[usize] = if quick {
        &[512, 1024]
    } else {
        &[1024, 2048, 4096]
    };

    // Phase A: empirical characterization.
    let mut rows = Vec::new();
    let mut rates = Vec::new();
    for &m in &block_sizes {
        let r = characterize(m, reps);
        rows.push(vec![
            m.to_string(),
            format!("{:.3}", r.blocking / 1e9),
            format!("{:.3}", r.apply / 1e9),
        ]);
        rates.push((m, r));
    }
    print_table(
        "Empirical primitive characterization (VY2 kernels)",
        &["m_s", "blocking Gflop/s", "apply Gflop/s"],
        &rows,
    );

    // Phase B: predicted vs measured factor times.
    let mut rows = Vec::new();
    for &n in sizes {
        let t = workloads::random_spd_scalar(n, 17);
        let mut best_pred = (0usize, f64::INFINITY);
        let mut best_meas = (0usize, f64::INFINITY);
        for (m, r) in &rates {
            if *m > n / 4 {
                continue;
            }
            let pred = predict(n, *m, r);
            let opts = SchurOptions {
                block_size: Some(*m),
                ..Default::default()
            };
            let mut meas = f64::INFINITY;
            for _ in 0..reps.min(3) {
                let (_, run) = time_it(|| factor_spd(&t, &opts).unwrap());
                meas = meas.min(run.wall_s);
            }
            if pred < best_pred.1 {
                best_pred = (*m, pred);
            }
            if meas < best_meas.1 {
                best_meas = (*m, meas);
            }
            rows.push(vec![
                n.to_string(),
                m.to_string(),
                format!("{:.2}", pred * 1e3),
                format!("{:.2}", meas * 1e3),
                format!("{:.2}", meas / pred),
            ]);
        }
        rows.push(vec![
            n.to_string(),
            "--".into(),
            format!("best: m_s={}", best_pred.0),
            format!("best: m_s={}", best_meas.0),
            String::new(),
        ]);
    }
    print_table(
        "Block-size analysis: predicted vs measured factor time",
        &["n", "m_s", "predicted ms", "measured ms", "meas/pred"],
        &rows,
    );
    println!(
        "\npaper (§6.5/§9): the optimal m_s is predictable from the primitive characterization;\n\
         the model captures compute phases only (shifts/emission excluded), so ratios near 1\n\
         and matching best-m_s picks are the success criteria"
    );
    timer.finish();
}
