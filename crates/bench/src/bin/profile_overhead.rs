//! Overhead contract bench: instrumentation that is switched *off* must
//! be free.
//!
//! Every probe site in the workspace (spans, instant events, latency
//! histograms) promises one relaxed atomic load when disabled. This
//! binary prices that promise: it times a small GEMM workload bare,
//! then the same workload with a dense layer of *disabled* probe sites
//! per iteration (a span, an instant event with fields, and a histogram
//! record — more sites per flop than any real phase carries), and
//! asserts the instrumented loop is **< 2% slower**. Trials interleave
//! bare/instrumented and keep the best of each so frequency ramps and
//! scheduler noise cancel instead of accumulating into one side.
//!
//! Run: `cargo run -p bs-bench --release --bin profile_overhead [--quick]`
//!
//! Emits one `@@BENCH` record (`profile_overhead`) with the measured
//! `overhead_pct`, collected by `reproduce_all` and tracked by the
//! bench regression gate.

use bs_bench::{emit_bench, quick_mode};
use bs_matrix::{gemm, Matrix, Trans};
use std::time::Instant;

/// Disabled probe sites layered over each workload iteration —
/// deliberately denser than real instrumentation (the elimination loop
/// runs a handful of sites per factor *step*, each step a panel factor
/// plus a trailing update many times this GEMM's size).
const SITES_PER_ITER: usize = 8;

fn workload(a: &Matrix, b: &Matrix, c: &mut Matrix) {
    gemm(1.0, a.rf(), Trans::No, b.rf(), Trans::No, 0.0, c.mt());
}

fn instrumented(a: &Matrix, b: &Matrix, c: &mut Matrix, iter: usize) {
    for s in 0..SITES_PER_ITER {
        let _span = bs_probe::span!("overhead_probe", iter = iter, site = s);
        bs_probe::event!("overhead_tick", iter = iter, site = s, flops = 0.0);
        bs_probe::histogram::record(bs_probe::Hist::KernelCallNs, (iter + s) as u64);
    }
    workload(a, b, c);
}

fn main() {
    let quick = quick_mode();
    let n = 96;
    let (iters, trials) = if quick { (40, 5) } else { (150, 9) };

    // All probes off: this is the configuration whose cost we price.
    bs_probe::disable_all();
    bs_probe::reset_all();

    let a = Matrix::from_fn(n, n, |i, j| ((i * 7 + j * 3) % 13) as f64 / 13.0 - 0.4);
    let b = Matrix::from_fn(n, n, |i, j| ((i * 5 + j * 11) % 17) as f64 / 17.0 - 0.5);
    let mut c = Matrix::zeros(n, n);

    // Warm up the kernel dispatch, tuning tables, and caches.
    for i in 0..iters / 4 {
        instrumented(&a, &b, &mut c, i);
    }

    let mut best_bare = f64::INFINITY;
    let mut best_inst = f64::INFINITY;
    let total = Instant::now();
    for _ in 0..trials {
        let t = Instant::now();
        for _ in 0..iters {
            workload(&a, &b, &mut c);
        }
        best_bare = best_bare.min(t.elapsed().as_secs_f64());

        let t = Instant::now();
        for i in 0..iters {
            instrumented(&a, &b, &mut c, i);
        }
        best_inst = best_inst.min(t.elapsed().as_secs_f64());
    }

    let overhead_pct = 100.0 * (best_inst - best_bare) / best_bare;
    println!(
        "profile_overhead: bare {:.3} ms, instrumented {:.3} ms over {iters} iters \
         x {SITES_PER_ITER} disabled sites -> overhead {overhead_pct:+.3}%",
        best_bare * 1e3,
        best_inst * 1e3,
    );

    // Nothing may have been recorded while disabled.
    assert_eq!(
        bs_probe::trace::take_events().len(),
        0,
        "disabled trace sites recorded events"
    );
    assert!(
        bs_probe::histogram::merged(bs_probe::Hist::KernelCallNs).is_empty(),
        "disabled histogram sites recorded samples"
    );
    assert!(
        overhead_pct < 2.0,
        "disabled instrumentation costs {overhead_pct:.3}% (> 2% contract); \
         a probe site is doing work while off"
    );

    emit_bench(
        "profile_overhead",
        total.elapsed().as_secs_f64(),
        0,
        &[("overhead_pct", overhead_pct)],
    );
}
