//! §8.2 worked example: the 6×6 symmetric Toeplitz matrix with first
//! row (1, 1, 0.5297, 0.6711, 0.0077, 0.3834), whose leading 2×2 minor
//! is singular.
//!
//! Paper numbers (δ = 10⁻⁵, x = 1⃗):
//!   b              = (3.5919, 4.2085, 4.7305, 4.7305, 4.2085, 3.5919)
//!   ‖x − x₁‖       ≈ 3.6375e−5   (after the perturbed direct solve)
//!   ‖x − x₂‖       ≈ 6.9982e−10  (after 1 refinement step)
//!   ‖x − x₃‖       ≈ 1.5877e−14  (after 2 refinement steps)
//!   ‖δT·T⁻¹‖       ≈ 2.8753e−5
//!
//! Run: `cargo run -p bs-bench --release --bin sec8_example`

use bs_bench::{print_table, sci};
use bs_core::{factor_indefinite, solve_refined, IndefOptions, RefineOptions};
use bs_matrix::Matrix;
use bs_toeplitz::workloads;

fn main() {
    let timer = bs_bench::RunTimer::start("sec8_example");
    let t = workloads::paper_singular_minor_example();
    let (b, x_true) = workloads::rhs_for_ones(&t);
    println!(
        "b = {:?}  (paper: 3.5919 4.2085 4.7305 4.7305 4.2085 3.5919)",
        b
    );

    let opts = IndefOptions {
        delta: Some(1e-5),
        ..Default::default()
    };
    let f = factor_indefinite(&t, &opts).unwrap();
    println!(
        "\nperturbations: {} (step {}, column {}, delta {:.1e});  exchanges: {};  max ‖U‖ est: {:.4e}",
        f.perturbations.len(),
        f.perturbations[0].step,
        f.perturbations[0].column,
        f.perturbations[0].delta,
        f.exchanges,
        f.max_reflector_norm,
    );
    println!("signature D = {:?}", f.d);

    // ‖δT · T⁻¹‖ — the refinement convergence factor γ (eq. 41).
    let dense = t.to_dense();
    let rec = f.reconstruct();
    let mut dt = rec.clone();
    dt.axpy(-1.0, &dense);
    let lu = bs_matrix::lu::lu_factor(&dense).unwrap();
    // M = δT · T⁻¹ columnwise: column j of M solves Tᵀ mᵀ... use
    // M = δT · T⁻¹  =>  Mᵀ = T⁻ᵀ δTᵀ; both symmetric here, column by column.
    let n = 6;
    let mut m = Matrix::zeros(n, n);
    for j in 0..n {
        // (T⁻¹ δT) column j, then transpose-relate: since both are
        // symmetric, ‖δT T⁻¹‖₂ = ‖T⁻¹ δT‖₂.
        let col: Vec<f64> = (0..n).map(|i| dt[(i, j)]).collect();
        let x = lu.solve(&col).unwrap();
        for i in 0..n {
            m[(i, j)] = x[i];
        }
    }
    let gamma = bs_matrix::norms::mat_two_estimate(&m, 100);
    println!("‖δT·T⁻¹‖₂ ≈ {gamma:.4e}  (paper: 2.8753e−5)");

    // Refinement trace.
    let x1 = f.solve(&b).unwrap();
    let mut rows = Vec::new();
    let err = |x: &[f64]| -> f64 {
        x.iter()
            .zip(&x_true)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    };
    rows.push(vec![
        "x1 (direct)".into(),
        sci(err(&x1)),
        "3.6375e-5".into(),
    ]);
    let res = solve_refined(&t, &f, &b, &RefineOptions::default()).unwrap();
    // Recompute the per-iterate errors by replaying.
    let mut x = x1.clone();
    for (i, _) in res.correction_norms.iter().enumerate() {
        let r = t.residual(&x, &b);
        let dx = f.solve(&r).unwrap();
        for (xi, di) in x.iter_mut().zip(&dx) {
            *xi += di;
        }
        let paper = match i {
            0 => "6.9982e-10",
            1 => "1.5877e-14",
            _ => "-",
        };
        rows.push(vec![
            format!("x{} (refined)", i + 2),
            sci(err(&x)),
            paper.into(),
        ]);
        if i >= 2 {
            break;
        }
    }
    print_table(
        "§8.2 — iterative refinement on the singular-minor example (δ = 1e−5)",
        &["iterate", "‖x − xᵢ‖₂", "paper"],
        &rows,
    );
    println!(
        "\nrefinement converged = {} in {} steps (paper: two steps suffice)",
        res.converged, res.iterations
    );
    timer.finish();
}
