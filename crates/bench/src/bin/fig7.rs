//! Figure 7 / Experiment 2 (§7.1.6): 4096×4096 block Toeplitz with
//! m = 8 on 64 processors, all three data distributions over the `b`
//! axis — `b < 1` means Version 3 with `spread = 1/b`, `b = 1` is
//! Version 1, `b > 1` is Version 2.
//!
//! Paper shape: for moderate block sizes with adequate parallelism
//! (N ≫ NP), Version 1 (b = 1) is the fastest.
//!
//! Run: `cargo run -p bs-bench --release --bin fig7`

use bs_bench::{ms, print_table};
use bs_perfmodel::Rep;
use bs_simulator::analytic::{simulate, SimConfig};
use bs_simulator::{Scheme, T3DModel};

fn main() {
    let timer = bs_bench::RunTimer::start("fig7");
    let n = 4096;
    let m = 8;
    let np = 64;
    let model = T3DModel::default();
    let mut rows = Vec::new();
    let mut best = (String::new(), f64::INFINITY);
    let configs: Vec<(String, Scheme)> = vec![
        ("1/4".into(), Scheme::V3 { spread: 4 }),
        ("1/2".into(), Scheme::V3 { spread: 2 }),
        ("1".into(), Scheme::V1),
        ("2".into(), Scheme::V2 { b: 2 }),
        ("4".into(), Scheme::V2 { b: 4 }),
        ("8".into(), Scheme::V2 { b: 8 }),
    ];
    for (label, scheme) in configs {
        let r = simulate(
            &SimConfig {
                n,
                m,
                np,
                scheme,
                rep: Rep::VY2,
            },
            &model,
        );
        bs_bench::charge_model_flops(r.flops);
        if r.total < best.1 {
            best = (scheme.label(), r.total);
        }
        rows.push(vec![
            label,
            scheme.label(),
            ms(r.total),
            ms(r.shift),
            ms(r.apply),
            ms(r.broadcast),
            ms(r.panel),
            ms(r.barrier),
        ]);
    }
    print_table(
        "Fig. 7 — 4096x4096 block Toeplitz (m=8), NP=64: factor time vs b",
        &[
            "b",
            "scheme",
            "total ms",
            "shift ms",
            "apply ms",
            "bcast ms",
            "panel ms",
            "barrier ms",
        ],
        &rows,
    );
    println!(
        "\nbest = {} ({:.3} ms); paper: Version 1 (b = 1) fastest at moderate block sizes",
        best.0,
        best.1 * 1e3
    );
    timer.finish();
}
