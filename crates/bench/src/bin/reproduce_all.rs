//! Runs every experiment of the paper in sequence — Figures 6-10, the
//! §8.2 worked example, the flop-count tables and the refinement
//! study — plus the ablation, block-size-prediction and randomized
//! cross-validation harnesses, by invoking the sibling binaries. Output is the full
//! paper-vs-measured record (see EXPERIMENTS.md).
//!
//! Run: `cargo run -p bs-bench --release --bin reproduce_all [--quick]`

use std::process::Command;

fn main() {
    let quick = bs_bench::quick_mode();
    let me = std::env::current_exe().expect("current exe path");
    let dir = me.parent().expect("target dir");
    let bins = [
        "fig6",
        "fig7",
        "fig8",
        "fig9",
        "fig10",
        "sec8_example",
        "flops_table",
        "refinement_study",
        "ablations",
        "blocksize_model",
        "cross_validate",
    ];
    for bin in bins {
        println!("\n==================== {bin} ====================");
        let mut cmd = Command::new(dir.join(bin));
        if quick {
            cmd.arg("--quick");
        }
        let status = cmd.status().unwrap_or_else(|e| {
            panic!("failed to launch {bin} (build the workspace first): {e}")
        });
        assert!(status.success(), "{bin} failed with {status}");
    }
    println!("\nall experiments completed");
}
