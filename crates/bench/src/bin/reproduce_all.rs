//! Runs every experiment of the paper in sequence — Figures 6-10, the
//! §8.2 worked example, the flop-count tables and the refinement
//! study — plus the ablation, block-size-prediction and randomized
//! cross-validation harnesses, by invoking the sibling binaries. Output
//! is the full paper-vs-measured record (see EXPERIMENTS.md).
//!
//! Each child binary prints a machine-readable `@@BENCH {...}` record
//! (wall time, flop total); this driver collects them all into
//! `BENCH_schur.json` next to the working directory (override the
//! output path with `BS_BENCH_OUT=<file>`).
//!
//! With `BS_BENCH_GATE=1` the fresh records are additionally diffed
//! against the committed baseline (`BENCH_schur.json` or
//! `BS_BENCH_BASELINE=<file>`) before it is overwritten, and the
//! verdict is written to `BENCH_regressions.json`; `BS_BENCH_GATE=strict`
//! exits nonzero on any counted regression.
//!
//! Run: `cargo run -p bs-bench --release --bin reproduce_all [--quick]`

use bs_bench::regression::{RegressionReport, Tolerances};
use bs_probe::Json;
use std::io::Write;
use std::process::Command;
use std::time::Instant;

fn main() {
    let quick = bs_bench::quick_mode();
    let me = std::env::current_exe().expect("current exe path");
    let dir = me.parent().expect("target dir");
    let bins = [
        "fig6",
        "fig7",
        "fig8",
        "fig9",
        "fig10",
        "sec8_example",
        "flops_table",
        "refinement_study",
        "ablations",
        "blocksize_model",
        "steady_state",
        "serve_load",
        "cross_validate",
        "kernels",
        "profile_overhead",
        "dist_sweep",
    ];
    let started = Instant::now();
    let mut records: Vec<Json> = Vec::new();
    for bin in bins {
        println!("\n==================== {bin} ====================");
        let mut cmd = Command::new(dir.join(bin));
        if quick {
            cmd.arg("--quick");
        }
        let wall = Instant::now();
        let out = cmd
            .output()
            .unwrap_or_else(|e| panic!("failed to launch {bin} (build the workspace first): {e}"));
        let wall_s = wall.elapsed().as_secs_f64();
        // Echo the child's output, harvesting the marker lines.
        let stdout = String::from_utf8_lossy(&out.stdout);
        let mut found = false;
        for line in stdout.lines() {
            if let Some(payload) = line.strip_prefix(bs_bench::BENCH_MARKER) {
                match Json::parse(payload) {
                    Ok(rec) => {
                        records.push(rec);
                        found = true;
                    }
                    Err(e) => eprintln!("{bin}: unparseable bench record ({e}): {payload}"),
                }
            } else {
                println!("{line}");
            }
        }
        std::io::stderr()
            .write_all(&out.stderr)
            .expect("stderr passthrough");
        assert!(out.status.success(), "{bin} failed with {}", out.status);
        if !found {
            // A binary without instrumentation still gets a wall-time row.
            records.push(Json::obj(vec![
                ("name", Json::Str(bin.to_string())),
                ("wall_s", Json::Num(wall_s)),
            ]));
        }
    }

    let report = Json::obj(vec![
        ("suite", Json::Str("block-schur reproduce_all".to_string())),
        ("quick", Json::Bool(quick)),
        ("total_wall_s", Json::Num(started.elapsed().as_secs_f64())),
        ("experiments", Json::Arr(records)),
    ]);

    // Gate BEFORE overwriting: the baseline on disk is the committed
    // reference, the fresh report is the candidate.
    let gate = std::env::var("BS_BENCH_GATE").unwrap_or_default();
    let baseline_path =
        std::env::var("BS_BENCH_BASELINE").unwrap_or_else(|_| "BENCH_schur.json".to_string());
    let mut gate_failed = false;
    if gate == "1" || gate == "strict" {
        match std::fs::read_to_string(&baseline_path) {
            Ok(text) => match Json::parse(text.trim()) {
                Ok(baseline) => {
                    let verdict =
                        RegressionReport::compare(&baseline, &report, &Tolerances::default());
                    print!("\n{}", verdict.summary());
                    std::fs::write("BENCH_regressions.json", format!("{}\n", verdict.to_json()))
                        .expect("write BENCH_regressions.json");
                    println!("gate verdict written to BENCH_regressions.json");
                    gate_failed = gate == "strict" && !verdict.is_clean();
                }
                Err(e) => eprintln!("bench gate: baseline {baseline_path} unparseable ({e})"),
            },
            Err(e) => eprintln!(
                "bench gate: no baseline at {baseline_path} ({e}); run once and commit it"
            ),
        }
    }

    let path = std::env::var("BS_BENCH_OUT").unwrap_or_else(|_| "BENCH_schur.json".to_string());
    std::fs::write(&path, format!("{report}\n")).expect("write bench report");
    println!("\nall experiments completed; bench records written to {path}");
    if gate_failed {
        eprintln!("bench gate (strict): regressions against {baseline_path}");
        std::process::exit(1);
    }
}
