//! Ablations of the implementation choices DESIGN.md calls out:
//!
//! 1. block reflector representation (U / VY1 / VY2 / YTYᵀ / sequential)
//!    for the whole factorization;
//! 2. in-place phase 3 (§6.4) vs explicit shift;
//! 3. two-level panel blocking chunk size (§6.2);
//! 4. sequential vs pooled trailing update;
//! 5. direct O(n²) vs FFT O(n log n) Toeplitz product.
//!
//! Run: `cargo run -p bs-bench --release --bin ablations [--quick]`

use bs_bench::{print_table, quick_mode, time_it};
use bs_core::{factor_spd, RepKind, SchurOptions};
use bs_toeplitz::{workloads, FastToeplitzMatVec};

fn best_of<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let (_, run) = time_it(&mut f);
        best = best.min(run.wall_s);
    }
    best
}

fn main() {
    let timer = bs_bench::RunTimer::start("ablations");
    let quick = quick_mode();
    let n = if quick { 512 } else { 2048 };
    let reps = if quick { 1 } else { 3 };
    let t = workloads::random_spd_scalar(n, 3);

    // 1. Representation ablation.
    let mut rows = Vec::new();
    for ms_ in [8usize, 32] {
        for rep in RepKind::ALL {
            let opts = SchurOptions {
                block_size: Some(ms_),
                rep,
                ..Default::default()
            };
            let secs = best_of(reps, || factor_spd(&t, &opts).unwrap());
            rows.push(vec![
                ms_.to_string(),
                format!("{rep}"),
                format!("{:.2}", secs * 1e3),
            ]);
        }
    }
    print_table(
        &format!("Ablation 1 — representation (n = {n})"),
        &["m_s", "representation", "time ms"],
        &rows,
    );

    // 2. In-place vs explicit shift (matters most at small m).
    let mut rows = Vec::new();
    for ms_ in [1usize, 4, 16] {
        for (label, explicit_shift) in [("in-place", false), ("explicit shift", true)] {
            let opts = SchurOptions {
                block_size: Some(ms_),
                explicit_shift,
                ..Default::default()
            };
            let secs = best_of(reps, || factor_spd(&t, &opts).unwrap());
            rows.push(vec![
                ms_.to_string(),
                label.to_string(),
                format!("{:.2}", secs * 1e3),
            ]);
        }
    }
    print_table(
        &format!("Ablation 2 — phase 3 strategy (n = {n}, §6.4)"),
        &["m_s", "phase 3", "time ms"],
        &rows,
    );

    // 3. Two-level blocking chunk size at large m.
    let mut rows = Vec::new();
    let ms_ = 32;
    for k in [1usize, 2, 4, 8, 16, 32] {
        let opts = SchurOptions {
            block_size: Some(ms_),
            two_level: Some(k),
            ..Default::default()
        };
        let secs = best_of(reps, || factor_spd(&t, &opts).unwrap());
        rows.push(vec![k.to_string(), format!("{:.2}", secs * 1e3)]);
    }
    print_table(
        &format!("Ablation 3 — two-level panel chunk k (n = {n}, m_s = {ms_}, §6.2)"),
        &["k", "time ms"],
        &rows,
    );

    // 4. Parallel trailing update.
    let mut rows = Vec::new();
    for (label, exec) in [
        ("sequential", bs_matrix::ExecPolicy::sequential()),
        ("pooled", bs_matrix::ExecPolicy::max_threads()),
    ] {
        let opts = SchurOptions {
            block_size: Some(32),
            exec,
            ..Default::default()
        };
        let secs = best_of(reps, || factor_spd(&t, &opts).unwrap());
        rows.push(vec![label.to_string(), format!("{:.2}", secs * 1e3)]);
    }
    print_table(
        &format!("Ablation 4 — trailing update parallelism (n = {n}, m_s = 32)"),
        &["mode", "time ms"],
        &rows,
    );

    // 5. Direct vs FFT Toeplitz product.
    let mut rows = Vec::new();
    for nn in [512usize, 2048, 8192] {
        if quick && nn > 2048 {
            continue;
        }
        let tt = workloads::random_spd_scalar(nn, 5);
        let x = vec![1.0; nn];
        let direct = best_of(reps, || tt.matvec(&x));
        let fast = FastToeplitzMatVec::new(&tt);
        let fft = best_of(reps, || fast.apply(&x));
        rows.push(vec![
            nn.to_string(),
            format!("{:.3}", direct * 1e3),
            format!("{:.3}", fft * 1e3),
            format!("{:.1}x", direct / fft),
        ]);
    }
    print_table(
        "Ablation 5 — Toeplitz product: direct O(n²) vs circulant FFT O(n log n)",
        &["n", "direct ms", "fft ms", "speedup"],
        &rows,
    );
    timer.finish();
}
