//! Randomized cross-validation sweep: every solver in the workspace is
//! run against every other on hundreds of random configurations, and
//! the worst observed disagreement is reported. A fuzz-style confidence
//! harness on top of the unit/property tests.
//!
//! Run: `cargo run -p bs-bench --release --bin cross_validate [--quick]`

use bs_baselines::{block_levinson_solve, dense_lu_solve, levinson_solve};
use bs_bench::{print_table, quick_mode, sci};
use bs_core::{
    factor_indefinite, factor_spd, solve_refined, IndefOptions, RefineOptions, RepKind,
    SchurOptions,
};
use bs_simulator::dist_exec::factor_distributed;
use bs_simulator::Scheme;
use bs_toeplitz::workloads;
use std::sync::Arc;

fn max_err(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

fn main() {
    let timer = bs_bench::RunTimer::start("cross_validate");
    let cases = if quick_mode() { 40 } else { 200 };
    let mut worst_spd = 0.0f64;
    let mut worst_indef = 0.0f64;
    let mut worst_dist = 0.0f64;
    let mut spd_runs = 0usize;
    let mut indef_runs = 0usize;
    let mut dist_runs = 0usize;
    let mut skipped = 0usize;

    for seed in 0..cases {
        let m = 1 + (seed % 4) as usize;
        let p = 4 + (seed % 11) as usize;

        // --- SPD agreement: Schur vs block Levinson vs dense LU. ---
        {
            let t = workloads::random_spd_block(m, p, 10_000 + seed);
            let (b, _) = workloads::rhs_for_ones(&t);
            let rep = RepKind::ALL[seed as usize % RepKind::ALL.len()];
            let opts = SchurOptions {
                rep,
                exec: if seed % 3 == 0 {
                    bs_matrix::ExecPolicy::max_threads()
                } else {
                    bs_matrix::ExecPolicy::sequential()
                },
                explicit_shift: seed % 2 == 0,
                two_level: if seed % 5 == 0 { Some(2) } else { None },
                ..Default::default()
            };
            let f = factor_spd(&t, &opts).expect("SPD factorization");
            let x_schur = f.solve(&b).expect("solve");
            let x_bl = block_levinson_solve(&t, &b).expect("block Levinson");
            let x_lu = dense_lu_solve(&t, &b).expect("dense LU");
            worst_spd = worst_spd
                .max(max_err(&x_schur, &x_bl))
                .max(max_err(&x_schur, &x_lu));
            if m == 1 {
                let row: Vec<f64> = (0..t.order()).map(|j| t.get(0, j)).collect();
                let x_lev = levinson_solve(&row, &b).expect("Levinson");
                worst_spd = worst_spd.max(max_err(&x_schur, &x_lev));
            }
            spd_runs += 1;
        }

        // --- Indefinite / singular-minor agreement vs dense LU. ---
        {
            let n = m * p + 2;
            let t = if seed % 2 == 0 {
                workloads::singular_minor_scalar(n, 20_000 + seed)
            } else {
                workloads::random_indefinite_scalar(n, 20_000 + seed)
            };
            let dense_ok = bs_matrix::lu::lu_factor(&t.to_dense());
            let cond = bs_matrix::norms::cond_one_estimate(&t.to_dense());
            if let (Ok(lu), true) = (dense_ok, cond.is_finite() && cond < 1e7) {
                let (b, _) = workloads::rhs_for_ones(&t);
                let x_lu = lu.solve(&b).expect("lu solve");
                match factor_indefinite(&t, &IndefOptions::default()) {
                    Ok(f) => {
                        let res = solve_refined(&t, &f, &b, &RefineOptions::default())
                            .expect("refinement");
                        if res.converged {
                            // Allow conditioning-scaled tolerance.
                            let err = max_err(&res.x, &x_lu) / cond.max(1.0);
                            worst_indef = worst_indef.max(err);
                            indef_runs += 1;
                        } else {
                            skipped += 1;
                        }
                    }
                    Err(_) => skipped += 1,
                }
            } else {
                skipped += 1;
            }
        }

        // --- Distributed vs sequential (every scheme). ---
        if seed % 4 == 0 {
            let mm = if m.is_multiple_of(2) { m } else { 2 * m };
            let t = workloads::random_spd_block(mm, p, 30_000 + seed);
            let seq = factor_spd(&t, &SchurOptions::default()).expect("sequential");
            let scheme = match seed % 3 {
                0 => Scheme::V1,
                1 => Scheme::V2 { b: 2 },
                _ => Scheme::V3 { spread: 2 },
            };
            let np = match scheme {
                Scheme::V3 { spread } => spread * 2,
                _ => 3,
            };
            let d =
                factor_distributed(&t, np, scheme, RepKind::VY2, Arc::new(bs_distmem::ZeroCost));
            worst_dist = worst_dist.max(d.r.max_abs_diff(&seq.r));
            dist_runs += 1;
        }
    }

    print_table(
        "Cross-validation sweep",
        &["check", "runs", "worst disagreement", "budget"],
        &[
            vec![
                "SPD: Schur vs {block Levinson, LU, Levinson}".into(),
                spd_runs.to_string(),
                sci(worst_spd),
                "1e-6".into(),
            ],
            vec![
                "indefinite: refined Schur vs LU (cond-scaled)".into(),
                indef_runs.to_string(),
                sci(worst_indef),
                "1e-8".into(),
            ],
            vec![
                "distributed V1/V2/V3 vs sequential R".into(),
                dist_runs.to_string(),
                sci(worst_dist),
                "1e-9".into(),
            ],
        ],
    );
    println!("\nskipped (singular / too ill-conditioned / non-convergent): {skipped}");
    assert!(worst_spd < 1e-6, "SPD disagreement {worst_spd:e}");
    assert!(
        worst_indef < 1e-8,
        "indefinite disagreement {worst_indef:e}"
    );
    assert!(worst_dist < 1e-9, "distributed disagreement {worst_dist:e}");
    println!("all checks within budget");
    timer.finish();
}
