//! Figure 8 / Experiment 3 (§7.1.7): 4096×4096 block Toeplitz with
//! m = 32 on 64 processors, Version 1 vs Version 3 over the spread.
//!
//! Paper shape: parallelism under V1 is poor (only p = 128 blocks for
//! 64 PEs and a serial pivot panel); spreading each block over more
//! processors helps up to an optimum at spread = 8, beyond which the
//! extra broadcasts offset the gain.
//!
//! Run: `cargo run -p bs-bench --release --bin fig8`

use bs_bench::{ms, print_table};
use bs_perfmodel::Rep;
use bs_simulator::analytic::{simulate, SimConfig};
use bs_simulator::{Scheme, T3DModel};

fn main() {
    let timer = bs_bench::RunTimer::start("fig8");
    let n = 4096;
    let m = 32;
    let np = 64;
    let model = T3DModel::default();
    let mut rows = Vec::new();
    let mut best = (0usize, f64::INFINITY);
    for spread in [1usize, 2, 4, 8, 16, 32] {
        let scheme = if spread == 1 {
            Scheme::V1
        } else {
            Scheme::V3 { spread }
        };
        let r = simulate(
            &SimConfig {
                n,
                m,
                np,
                scheme,
                rep: Rep::VY2,
            },
            &model,
        );
        bs_bench::charge_model_flops(r.flops);
        if r.total < best.1 {
            best = (spread, r.total);
        }
        rows.push(vec![
            spread.to_string(),
            scheme.label(),
            ms(r.total),
            ms(r.shift),
            ms(r.apply),
            ms(r.broadcast),
            ms(r.panel),
            ms(r.barrier),
        ]);
    }
    print_table(
        "Fig. 8 — 4096x4096 block Toeplitz (m=32), NP=64: factor time vs spread",
        &[
            "spread",
            "scheme",
            "total ms",
            "shift ms",
            "apply ms",
            "bcast ms",
            "panel ms",
            "barrier ms",
        ],
        &rows,
    );
    println!(
        "\nbest spread = {} ({:.3} ms); paper: optimum at spread = 8",
        best.0,
        best.1 * 1e3
    );
    timer.finish();
}
