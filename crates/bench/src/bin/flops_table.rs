//! Tabulates the paper's analytic flop counts (eqs. 25–32) and checks
//! them against the instrumented counters of the actual implementation.
//!
//! Paper claims verified here (§6.2/§6.3):
//! - producing the representation ("blocking"): YTYᵀ < VY2 < VY1 < U,
//!   with k = m leading terms 1.33m³ / 2m³ / 2.33m³ / 6m³;
//! - applying it: VY2 cheapest (5m³p + 2m²p), U costs 7m³p;
//! - YTYᵀ needs about half the broadcast volume.
//!
//! Run: `cargo run -p bs-bench --release --bin flops_table`

use bs_bench::print_table;
use bs_core::{factor_spd, RepKind, SchurOptions};
use bs_perfmodel::{apply_flops, blocking_flops, comm_words, Rep};
use bs_toeplitz::workloads;

fn main() {
    let timer = bs_bench::RunTimer::start("flops_table");
    // Analytic blocking + application costs.
    let mut rows = Vec::new();
    for m in [2usize, 4, 8, 16, 32, 64] {
        let p = 64;
        for rep in Rep::ALL {
            rows.push(vec![
                m.to_string(),
                rep.to_string(),
                format!("{:.0}", blocking_flops(rep, m, m)),
                format!("{:.2}", blocking_flops(rep, m, m) / (m * m * m) as f64),
                format!("{:.0}", apply_flops(rep, m, m, p)),
                format!("{:.2}", apply_flops(rep, m, m, p) / (m * m * m * p) as f64),
                comm_words(rep, m).to_string(),
            ]);
        }
    }
    print_table(
        "Eqs. 25-32 — analytic blocking/application flops (k = m, p = 64)",
        &[
            "m",
            "rep",
            "blocking",
            "/m^3",
            "apply",
            "/(m^3 p)",
            "bcast words",
        ],
        &rows,
    );

    // Instrumented totals from the real factorization.
    let n = 512;
    let mut rows2 = Vec::new();
    for ms_ in [4usize, 8, 16, 32] {
        let t = workloads::random_spd_scalar(n, 3);
        for rep in [
            RepKind::Accumulated,
            RepKind::VY1,
            RepKind::VY2,
            RepKind::YTY,
            RepKind::Sequential,
        ] {
            let opts = SchurOptions {
                block_size: Some(ms_),
                rep,
                ..Default::default()
            };
            bs_matrix::flops::reset();
            let _ = factor_spd(&t, &opts).unwrap();
            let measured = bs_matrix::flops::get();
            let model = bs_perfmodel::total_factor_flops(n, ms_);
            rows2.push(vec![
                ms_.to_string(),
                format!("{rep}"),
                format!("{measured}"),
                format!("{model:.0}"),
                format!("{:.2}", measured as f64 / model),
            ]);
        }
    }
    print_table(
        &format!("Instrumented flops, n = {n} — measured vs the 4·m_s·n² model (§6.5)"),
        &["m_s", "rep", "measured", "4 m_s n^2", "ratio"],
        &rows2,
    );
    println!(
        "\nthe measured/model ratio is expected near ~1.3-2: the 4·m_s·n² model keeps only the\n\
         leading application term, while the implementation also counts panel production,\n\
         shifts of the R rows and lower-order terms"
    );
    timer.finish();
}
