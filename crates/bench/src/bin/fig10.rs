//! Figure 10 (§9): performance of the block Schur algorithm when a
//! scalar SPD Toeplitz matrix is *retiled* to algorithmic block size
//! `m_s` (§6.5), measured for real on the host CPU.
//!
//! The paper's Cray Y-MP finding: the measured rate (they plot MFLOPS)
//! improves *superlinearly* with `m_s` for large problems — enough to
//! beat the `≈ 4·m_s·n²` linear growth in arithmetic, so a block size
//! above the structural one can reduce wall time. On a modern cache
//! hierarchy the same effect comes from level-3 locality: at `m_s = 1`
//! the update is an axpy stream, at larger `m_s` a blocked gemm.
//!
//! Reported per (n, m_s): wall time, effective rate in Gflop/s counting
//! the *executed* `4·m_s·n²` flops (the paper's metric), and the rate
//! normalized to `m_s = 1`.
//!
//! Run: `cargo run -p bs-bench --release --bin fig10 [--quick]`

use bs_bench::{print_table, quick_mode, time_it};
use bs_core::{factor_spd, SchurOptions};
use bs_perfmodel::total_factor_flops;
use bs_toeplitz::workloads;

fn main() {
    let timer = bs_bench::RunTimer::start("fig10");
    let quick = quick_mode();
    let sizes: &[usize] = if quick {
        &[256, 512, 1024]
    } else {
        &[512, 1024, 2048, 4096]
    };
    let block_sizes = [1usize, 2, 4, 8, 16, 32];

    let mut rows = Vec::new();
    for &n in sizes {
        let t = workloads::random_spd_scalar(n, 7 + n as u64);
        let mut base_rate = None;
        for &ms_ in &block_sizes {
            if ms_ > n / 4 {
                continue;
            }
            let opts = SchurOptions {
                block_size: Some(ms_),
                ..Default::default()
            };
            // Warm-up + best-of-3 to de-noise.
            let mut best = f64::INFINITY;
            let reps = if quick { 1 } else { 3 };
            for _ in 0..reps {
                let (f, run) = time_it(|| factor_spd(&t, &opts).unwrap());
                assert_eq!(f.m, ms_);
                best = best.min(run.wall_s);
            }
            let gflops = total_factor_flops(n, ms_) / best / 1e9;
            let speedup_per_flop = match base_rate {
                None => {
                    base_rate = Some(gflops);
                    1.0
                }
                Some(b) => gflops / b,
            };
            rows.push(vec![
                n.to_string(),
                ms_.to_string(),
                format!("{:.1}", best * 1e3),
                format!("{gflops:.3}"),
                format!("{speedup_per_flop:.2}x"),
                format!("{:.1}", best * 1e3 * 1.0), // time column duplicated below as ratio
            ]);
            // Replace last helper column with time ratio vs m_s = 1.
            let len = rows.len();
            let t0: f64 = rows
                .iter()
                .find(|r| r[0] == n.to_string() && r[1] == "1")
                .map(|r| r[2].parse().unwrap())
                .unwrap_or(best * 1e3);
            rows[len - 1][5] = format!("{:.2}x", (best * 1e3) / t0);
        }
    }
    print_table(
        "Fig. 10 — block Schur on retiled scalar SPD Toeplitz: measured rate vs m_s",
        &[
            "n",
            "m_s",
            "time ms",
            "Gflop/s",
            "rate vs m_s=1",
            "time vs m_s=1",
        ],
        &rows,
    );
    println!(
        "\npaper: rate grows superlinearly with m_s on large problems (4·m_s·n² executed flops),\n\
         so larger algorithmic blocks can pay despite the linear flop increase"
    );
    timer.finish();
}
