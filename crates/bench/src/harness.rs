//! Minimal criterion-compatible bench harness.
//!
//! The workspace builds with no external dependencies, so the
//! `benches/*.rs` targets (declared `harness = false`) run on this
//! drop-in subset of the criterion API: groups, `bench_function` /
//! `bench_with_input`, `iter` / `iter_batched`, and the
//! `criterion_group!` / `criterion_main!` macros. Each benchmark runs a
//! warm-up pass plus `sample_size` timed samples and reports min /
//! median / mean wall time and the per-iteration flop count from the
//! `bs-probe` registry.

use std::fmt::Display;
use std::time::Instant;

pub use crate::{criterion_group, criterion_main};

/// Entry point handed to every bench function (criterion-compatible).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 10,
        }
    }
}

/// A named set of related benchmarks sharing a sample count.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Number of timed samples per benchmark (min 2).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn bench_function(&mut self, id: impl Display, mut f: impl FnMut(&mut Bencher)) {
        let mut b = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
            flops: 0,
        };
        f(&mut b);
        b.report(&self.name, &id.to_string());
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        self.bench_function(id, |b| f(b, input));
    }

    pub fn finish(self) {}
}

/// A `group/function/parameter` benchmark label.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// How `iter_batched` amortizes setup cost. The mini harness times
/// every routine call individually, so the variants only document
/// intent.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Runs and times the measured routine.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<f64>,
    flops: u64,
}

impl Bencher {
    /// Time `f` once per sample (plus one untimed warm-up call).
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        std::hint::black_box(f());
        let flops0 = bs_matrix::flops::total();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(f());
            self.samples.push(start.elapsed().as_secs_f64());
        }
        self.flops = (bs_matrix::flops::total() - flops0) / self.sample_size as u64;
    }

    /// Time `routine` on fresh input from `setup`; setup is untimed.
    pub fn iter_batched<I, T>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> T,
        _size: BatchSize,
    ) {
        std::hint::black_box(routine(setup()));
        let flops0 = bs_matrix::flops::total();
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(start.elapsed().as_secs_f64());
        }
        self.flops = (bs_matrix::flops::total() - flops0) / self.sample_size as u64;
    }

    fn report(&mut self, group: &str, id: &str) {
        if self.samples.is_empty() {
            println!("{group}/{id:<40} (no samples)");
            return;
        }
        self.samples.sort_by(|a, b| a.total_cmp(b));
        let min = self.samples[0];
        let median = self.samples[self.samples.len() / 2];
        let mean = self.samples.iter().sum::<f64>() / self.samples.len() as f64;
        let label = format!("{group}/{id}");
        println!(
            "{label:<52} min {:>10}  median {:>10}  mean {:>10}  {:>10} flops/iter",
            fmt_time(min),
            fmt_time(median),
            fmt_time(mean),
            self.flops,
        );
        crate::emit_bench(
            &label,
            median,
            self.flops,
            &[("min_s", min), ("mean_s", mean)],
        );
    }
}

fn fmt_time(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// criterion-compatible: bundle bench functions under one name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::harness::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// criterion-compatible: run the bundles from `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_collects_samples_and_flops() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(3);
        g.bench_function("adds", |b| {
            b.iter(|| bs_matrix::flops::add(50));
        });
        g.finish();
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut setups = 0usize;
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(4);
        g.bench_with_input(BenchmarkId::new("batched", 1), &1, |b, _| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![0.0f64; 8]
                },
                |v| v.iter().sum::<f64>(),
                BatchSize::SmallInput,
            );
        });
        // 1 warm-up + 4 samples.
        assert_eq!(setups, 5);
    }
}
