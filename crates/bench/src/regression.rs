//! Bench regression gate: diff a fresh `reproduce_all` report against
//! the committed `BENCH_schur.json` baseline.
//!
//! Wall time on shared CI hardware is noisy, so each metric carries its
//! own tolerance ([`Tolerances`]): wall-time regressions need both a
//! relative slowdown *and* an absolute excess before they count; flop
//! totals are deterministic and tolerate only rounding-level drift
//! (in either direction — a silent flop-count change is as much a bug
//! as a slowdown); growth factors may wiggle but not jump an order of
//! magnitude. A `--quick` report is never compared against a full one —
//! the verdict is `incomparable` instead of a wall of false alarms.
//!
//! The gate is opt-in: `BS_BENCH_GATE=1` makes `reproduce_all` diff and
//! write `BENCH_regressions.json` (report-only); `BS_BENCH_GATE=strict`
//! additionally exits nonzero on any counted regression.

use bs_probe::Json;

/// Per-metric comparison tolerances.
#[derive(Clone, Debug)]
pub struct Tolerances {
    /// Allowed relative wall-time slowdown (0.5 ⇒ +50%).
    pub wall_rel: f64,
    /// Wall-time differences below this many seconds never count
    /// (scheduler noise floor for sub-100ms experiments).
    pub wall_abs_floor_s: f64,
    /// Allowed relative flop-total drift, either direction.
    pub flops_rel: f64,
    /// Allowed growth-factor inflation (10 ⇒ one order of magnitude).
    pub growth_factor: f64,
}

impl Default for Tolerances {
    fn default() -> Self {
        Tolerances {
            wall_rel: 0.5,
            wall_abs_floor_s: 0.05,
            flops_rel: 0.02,
            growth_factor: 10.0,
        }
    }
}

/// One metric of one experiment, baseline vs current.
#[derive(Clone, Debug)]
pub struct MetricDiff {
    /// Experiment name (the `name` field of the `@@BENCH` record).
    pub experiment: String,
    /// Metric name (`wall_s`, `flops`, `peak_growth`).
    pub metric: &'static str,
    pub baseline: f64,
    pub current: f64,
    /// `current / baseline` (∞ when the baseline is 0 and current is not).
    pub ratio: f64,
    /// `true` when the difference exceeds the metric's tolerance.
    pub regressed: bool,
}

impl MetricDiff {
    fn new(experiment: &str, metric: &'static str, baseline: f64, current: f64) -> MetricDiff {
        let ratio = if baseline != 0.0 {
            current / baseline
        } else if current == 0.0 {
            1.0
        } else {
            f64::INFINITY
        };
        MetricDiff {
            experiment: experiment.to_string(),
            metric,
            baseline,
            current,
            ratio,
            regressed: false,
        }
    }
}

/// Outcome of diffing a fresh bench report against the baseline.
#[must_use = "a regression report carries the gate verdict; write or summarize it"]
#[derive(Clone, Debug, Default)]
pub struct RegressionReport {
    /// Baseline and current were run in different modes (`--quick` vs
    /// full); metric comparison would be meaningless.
    pub mode_mismatch: bool,
    /// Experiments present in the baseline but missing from the
    /// current run (a silently dropped benchmark is a regression of
    /// coverage, counted in [`regressions`](Self::regressions)).
    pub missing: Vec<String>,
    /// Experiments in the current run with no baseline row (new
    /// benchmarks; informational).
    pub added: Vec<String>,
    /// Every compared metric (regressed or not).
    pub diffs: Vec<MetricDiff>,
}

/// Pull `(name-with-occurrence, record)` pairs out of a report
/// document. Records sharing a name are disambiguated by occurrence
/// order (`name`, `name#2`, …) so repeated `@@BENCH` records from one
/// binary compare positionally.
fn keyed_records(report: &Json) -> Vec<(String, Json)> {
    let mut out = Vec::new();
    let Some(Json::Arr(records)) = report.get("experiments") else {
        return out;
    };
    let mut seen: std::collections::BTreeMap<String, usize> = std::collections::BTreeMap::new();
    for rec in records {
        let name = rec
            .get("name")
            .and_then(|n| n.as_str())
            .unwrap_or("(unnamed)")
            .to_string();
        let n = seen.entry(name.clone()).or_insert(0);
        *n += 1;
        let key = if *n == 1 { name } else { format!("{name}#{n}") };
        out.push((key, rec.clone()));
    }
    out
}

fn num(rec: &Json, field: &str) -> Option<f64> {
    rec.get(field).and_then(|v| v.as_f64())
}

impl RegressionReport {
    /// Diff `current` against `baseline` (both full `reproduce_all`
    /// report documents) under the given tolerances.
    pub fn compare(baseline: &Json, current: &Json, tol: &Tolerances) -> RegressionReport {
        let mut report = RegressionReport::default();
        let base_quick = baseline.get("quick").and_then(|q| q.as_bool());
        let cur_quick = current.get("quick").and_then(|q| q.as_bool());
        if base_quick != cur_quick {
            report.mode_mismatch = true;
            return report;
        }
        let base: std::collections::BTreeMap<String, Json> =
            keyed_records(baseline).into_iter().collect();
        let cur: std::collections::BTreeMap<String, Json> =
            keyed_records(current).into_iter().collect();
        for key in cur.keys() {
            if !base.contains_key(key) {
                report.added.push(key.clone());
            }
        }
        for (key, brec) in &base {
            let Some(crec) = cur.get(key) else {
                report.missing.push(key.clone());
                continue;
            };
            if let (Some(b), Some(c)) = (num(brec, "wall_s"), num(crec, "wall_s")) {
                let mut d = MetricDiff::new(key, "wall_s", b, c);
                d.regressed = c > b * (1.0 + tol.wall_rel) && c - b > tol.wall_abs_floor_s;
                report.diffs.push(d);
            }
            if let (Some(b), Some(c)) = (num(brec, "flops"), num(crec, "flops")) {
                let mut d = MetricDiff::new(key, "flops", b, c);
                let rel = if b != 0.0 {
                    ((c - b) / b).abs()
                } else if c != 0.0 {
                    f64::INFINITY
                } else {
                    0.0
                };
                d.regressed = rel > tol.flops_rel;
                report.diffs.push(d);
            }
            if let (Some(b), Some(c)) = (num(brec, "peak_growth"), num(crec, "peak_growth")) {
                let mut d = MetricDiff::new(key, "peak_growth", b, c);
                // Growth 0 means the monitor was off for that run.
                d.regressed = b > 0.0 && c > b * tol.growth_factor;
                report.diffs.push(d);
            }
        }
        report
    }

    /// Counted regressions: exceeded metric tolerances plus dropped
    /// experiments. 0 when the modes were incomparable.
    pub fn regressions(&self) -> usize {
        if self.mode_mismatch {
            return 0;
        }
        self.diffs.iter().filter(|d| d.regressed).count() + self.missing.len()
    }

    /// `true` when the gate found nothing to complain about.
    pub fn is_clean(&self) -> bool {
        !self.mode_mismatch && self.regressions() == 0
    }

    /// Gate verdict string: `ok`, `regressions`, or `incomparable`.
    pub fn verdict(&self) -> &'static str {
        if self.mode_mismatch {
            "incomparable"
        } else if self.regressions() == 0 {
            "ok"
        } else {
            "regressions"
        }
    }

    /// The full verdict document written to `BENCH_regressions.json`.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("verdict", Json::Str(self.verdict().to_string())),
            ("mode_mismatch", Json::Bool(self.mode_mismatch)),
            ("regressions", Json::Num(self.regressions() as f64)),
            (
                "missing",
                Json::Arr(self.missing.iter().cloned().map(Json::Str).collect()),
            ),
            (
                "added",
                Json::Arr(self.added.iter().cloned().map(Json::Str).collect()),
            ),
            (
                "diffs",
                Json::Arr(
                    self.diffs
                        .iter()
                        .map(|d| {
                            Json::obj(vec![
                                ("experiment", Json::Str(d.experiment.clone())),
                                ("metric", Json::Str(d.metric.to_string())),
                                ("baseline", Json::Num(d.baseline)),
                                ("current", Json::Num(d.current)),
                                ("ratio", Json::Num(d.ratio)),
                                ("regressed", Json::Bool(d.regressed)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Multi-line human summary (regressed rows only, plus the verdict).
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        if self.mode_mismatch {
            let _ = writeln!(
                out,
                "bench gate: incomparable (baseline and current were run in different \
                 --quick modes); no metrics compared"
            );
            return out;
        }
        for d in self.diffs.iter().filter(|d| d.regressed) {
            let _ = writeln!(
                out,
                "REGRESSION {} / {}: {:.4} -> {:.4} ({:.2}x)",
                d.experiment, d.metric, d.baseline, d.current, d.ratio
            );
        }
        for m in &self.missing {
            let _ = writeln!(out, "REGRESSION {m}: experiment missing from current run");
        }
        for a in &self.added {
            let _ = writeln!(out, "note: {a} has no baseline row (new experiment)");
        }
        let _ = writeln!(
            out,
            "bench gate: {} ({} regression{}, {} metric{} compared)",
            self.verdict(),
            self.regressions(),
            if self.regressions() == 1 { "" } else { "s" },
            self.diffs.len(),
            if self.diffs.len() == 1 { "" } else { "s" },
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(quick: bool, recs: Vec<Json>) -> Json {
        Json::obj(vec![
            ("suite", Json::Str("test".into())),
            ("quick", Json::Bool(quick)),
            ("experiments", Json::Arr(recs)),
        ])
    }

    fn rec(name: &str, wall_s: f64, flops: f64, growth: f64) -> Json {
        Json::obj(vec![
            ("name", Json::Str(name.to_string())),
            ("wall_s", Json::Num(wall_s)),
            ("flops", Json::Num(flops)),
            ("peak_growth", Json::Num(growth)),
        ])
    }

    #[test]
    fn identical_reports_are_clean() {
        let b = report(false, vec![rec("fig6", 1.0, 1e9, 2.0)]);
        let r = RegressionReport::compare(&b, &b, &Tolerances::default());
        assert!(r.is_clean());
        assert_eq!(r.verdict(), "ok");
        assert_eq!(r.diffs.len(), 3);
        assert!(r.summary().contains("bench gate: ok"));
    }

    #[test]
    fn slowdown_beyond_both_tolerances_regresses() {
        let tol = Tolerances::default();
        let b = report(false, vec![rec("fig6", 1.0, 1e9, 2.0)]);
        // +60% and +0.6s: over both the relative and absolute bars.
        let c = report(false, vec![rec("fig6", 1.6, 1e9, 2.0)]);
        let r = RegressionReport::compare(&b, &c, &tol);
        assert_eq!(r.regressions(), 1);
        assert_eq!(r.verdict(), "regressions");
        // +60% relative but only 6ms absolute: under the noise floor.
        let b_small = report(false, vec![rec("fig6", 0.010, 1e9, 2.0)]);
        let c_small = report(false, vec![rec("fig6", 0.016, 1e9, 2.0)]);
        let r = RegressionReport::compare(&b_small, &c_small, &tol);
        assert!(r.is_clean());
    }

    #[test]
    fn flop_drift_regresses_in_both_directions() {
        let tol = Tolerances::default();
        let b = report(false, vec![rec("fig6", 1.0, 1e9, 2.0)]);
        for flops in [1.05e9, 0.95e9] {
            let c = report(false, vec![rec("fig6", 1.0, flops, 2.0)]);
            let r = RegressionReport::compare(&b, &c, &tol);
            assert_eq!(r.regressions(), 1, "flops {flops}");
            assert_eq!(
                r.diffs.iter().find(|d| d.regressed).unwrap().metric,
                "flops"
            );
        }
    }

    #[test]
    fn growth_jump_and_missing_experiment_regress() {
        let tol = Tolerances::default();
        let b = report(
            false,
            vec![rec("fig6", 1.0, 1e9, 2.0), rec("fig7", 1.0, 1e9, 0.0)],
        );
        let c = report(false, vec![rec("fig6", 1.0, 1e9, 25.0)]);
        let r = RegressionReport::compare(&b, &c, &tol);
        // growth 2.0 -> 25.0 (>10x) plus fig7 dropped.
        assert_eq!(r.regressions(), 2);
        assert_eq!(r.missing, vec!["fig7".to_string()]);
        assert!(r.summary().contains("missing from current run"));
    }

    #[test]
    fn quick_vs_full_is_incomparable() {
        let b = report(false, vec![rec("fig6", 10.0, 1e12, 2.0)]);
        let c = report(true, vec![rec("fig6", 0.1, 1e8, 2.0)]);
        let r = RegressionReport::compare(&b, &c, &Tolerances::default());
        assert!(r.mode_mismatch);
        assert_eq!(r.regressions(), 0);
        assert_eq!(r.verdict(), "incomparable");
        let doc = r.to_json();
        assert_eq!(doc.get("verdict").unwrap().as_str(), Some("incomparable"));
    }

    #[test]
    fn duplicate_names_compare_positionally() {
        let b = report(
            false,
            vec![rec("kernels", 1.0, 1e9, 0.0), rec("kernels", 2.0, 2e9, 0.0)],
        );
        let c = report(
            false,
            vec![rec("kernels", 1.0, 1e9, 0.0), rec("kernels", 2.0, 2e9, 0.0)],
        );
        let r = RegressionReport::compare(&b, &c, &Tolerances::default());
        assert!(r.is_clean());
        assert_eq!(r.diffs.len(), 6);
        assert!(r.diffs.iter().any(|d| d.experiment == "kernels#2"));
    }

    #[test]
    fn report_round_trips_through_json_text() {
        let b = report(false, vec![rec("fig6", 1.0, 1e9, 2.0)]);
        let c = report(false, vec![rec("fig6", 9.0, 1e9, 2.0)]);
        let r = RegressionReport::compare(&b, &c, &Tolerances::default());
        let text = r.to_json().to_string();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed.get("verdict").unwrap().as_str(), Some("regressions"));
        assert_eq!(parsed.get("regressions").unwrap().as_f64(), Some(1.0));
    }
}
