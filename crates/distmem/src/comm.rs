//! The communicator: ranks as threads, channels as links, and two
//! interchangeable notions of time.
//!
//! * **Virtual transport** ([`World::run`]) — the original simulator:
//!   every rank carries a virtual clock advanced by a [`CostModel`],
//!   so `time()` reports what a modeled machine (e.g. the T3D) would
//!   have measured.
//! * **Wall transport** ([`World::run_wall`]) — the measured executor:
//!   ranks are dedicated OS threads exchanging owned data through the
//!   same channels, `compute`/`advance` are no-ops, and `time()`
//!   reports real elapsed wall-clock seconds since the group launched.
//!
//! Both transports share one `Proc` API (send/recv/broadcast/barrier/
//! gather), one poison protocol for rank failure, and one observability
//! surface: `CommBytes`/`CommMessages` on the send side,
//! `CommRecvBytes`/`CommRecvMessages` on the receive side, and a
//! `CommWaitNs` histogram sample per blocked receive or barrier.

use crate::cost::{CostModel, Primitive};
use bs_probe::histogram::{self, Hist};
use bs_probe::metrics::{self, Counter};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Lock recovering from poisoning: a rank's panic must not wedge the
/// whole group (ClockBarrier deliberately panics while holding its
/// lock when the group is poisoned).
fn lock_poison_ok<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A message in flight: payload plus its virtual arrival time.
struct Msg {
    tag: u64,
    data: Vec<f64>,
    arrive: f64,
}

/// Reusable barrier that also reduces the participating clocks to
/// their maximum (and optionally max-reduces one payload value).
struct ClockBarrier {
    state: Mutex<BarrierState>,
    cv: Condvar,
    np: usize,
}

#[derive(Default)]
struct BarrierState {
    count: usize,
    generation: u64,
    max_clock: f64,
    max_payload: f64,
    result_clock: f64,
    result_payload: f64,
    /// Set when a rank panicked: wakes and fails every waiter instead
    /// of deadlocking the group.
    poisoned: bool,
}

impl ClockBarrier {
    fn new(np: usize) -> Self {
        ClockBarrier {
            state: Mutex::new(BarrierState {
                max_clock: f64::NEG_INFINITY,
                max_payload: f64::NEG_INFINITY,
                ..Default::default()
            }),
            cv: Condvar::new(),
            np,
        }
    }

    /// Returns `(max clock, max payload)` across all participants.
    /// Panics if the group was poisoned by another rank's panic.
    fn wait(&self, clock: f64, payload: f64) -> (f64, f64) {
        let mut st = lock_poison_ok(&self.state);
        if st.poisoned {
            // bs-lint: allow(no-panic-paths) -- another simulated rank already panicked; propagating is the only sane exit
            panic!("barrier poisoned: another rank panicked");
        }
        st.max_clock = st.max_clock.max(clock);
        st.max_payload = st.max_payload.max(payload);
        st.count += 1;
        if st.count == self.np {
            st.result_clock = st.max_clock;
            st.result_payload = st.max_payload;
            st.count = 0;
            st.max_clock = f64::NEG_INFINITY;
            st.max_payload = f64::NEG_INFINITY;
            st.generation = st.generation.wrapping_add(1);
            self.cv.notify_all();
            (st.result_clock, st.result_payload)
        } else {
            let gen = st.generation;
            while st.generation == gen && !st.poisoned {
                st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
            if st.poisoned {
                // bs-lint: allow(no-panic-paths) -- the group poisoned while this rank slept on the condvar; unwind exactly like the pre-wait check above
                panic!("barrier poisoned: another rank panicked");
            }
            (st.result_clock, st.result_payload)
        }
    }

    /// Mark the group as failed and wake every waiter.
    fn poison(&self) {
        let mut st = lock_poison_ok(&self.state);
        st.poisoned = true;
        self.cv.notify_all();
    }
}

/// How a rank keeps time: a modeled clock or the real one.
enum Timing {
    /// Virtual clock advanced by a [`CostModel`] (the simulator).
    Virtual {
        clock: f64,
        cost: Arc<dyn CostModel>,
    },
    /// Real elapsed time since the group launched (the measured
    /// sharded executor). `compute`/`advance` are no-ops: the work
    /// itself already took the time.
    Wall { start: Instant },
}

/// Options for the wall-clock transport ([`World::run_wall`]).
#[derive(Clone, Copy, Debug)]
pub struct WallOpts {
    /// Upper bound on one blocked `recv` before the rank panics with a
    /// diagnostic naming the stuck `(source rank, tag)`. Converts a
    /// schedule bug (a message that will never come) from a silent
    /// deadlock into an attributable failure. `None` waits forever
    /// (poison from a peer's panic still unblocks the wait).
    pub recv_deadline: Option<Duration>,
}

impl Default for WallOpts {
    fn default() -> Self {
        WallOpts {
            recv_deadline: Some(Duration::from_secs(60)),
        }
    }
}

/// One rank's endpoint: use inside the closure passed to
/// [`World::run`] or [`World::run_wall`].
pub struct Proc {
    rank: usize,
    np: usize,
    timing: Timing,
    /// Bytes sent (p2p + broadcast contributions), for diagnostics.
    bytes_sent: usize,
    /// Bytes received (p2p + broadcast deliveries), for diagnostics.
    bytes_recv: usize,
    /// Nanoseconds this rank spent blocked in `recv`/barriers.
    comm_wait_ns: u64,
    /// Deadline for one blocked receive (wall transport; see
    /// [`WallOpts::recv_deadline`]).
    recv_deadline: Option<Duration>,
    /// `senders[to]` delivers to rank `to`'s inbox from this rank.
    senders: Vec<Sender<Msg>>,
    /// `inboxes[from]` receives messages sent by rank `from`.
    inboxes: Vec<Receiver<Msg>>,
    /// Out-of-order stash per source (selective receive by tag).
    stash: Vec<VecDeque<Msg>>,
    barrier: Arc<ClockBarrier>,
    poisoned: Arc<AtomicBool>,
}

impl Proc {
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    #[inline]
    pub fn num_ranks(&self) -> usize {
        self.np
    }

    /// Current time at this rank: the virtual clock under
    /// [`World::run`], elapsed wall seconds under [`World::run_wall`].
    #[inline]
    pub fn time(&self) -> f64 {
        match &self.timing {
            Timing::Virtual { clock, .. } => *clock,
            Timing::Wall { start } => start.elapsed().as_secs_f64(),
        }
    }

    /// Total bytes this rank has pushed into the network.
    #[inline]
    pub fn bytes_sent(&self) -> usize {
        self.bytes_sent
    }

    /// Total bytes this rank has consumed from the network.
    #[inline]
    pub fn bytes_received(&self) -> usize {
        self.bytes_recv
    }

    /// Nanoseconds this rank has spent blocked on receives and
    /// barriers (real wall time in both transports).
    #[inline]
    pub fn comm_wait_ns(&self) -> u64 {
        self.comm_wait_ns
    }

    /// Advance the local clock by the cost of `flops` in shape `prim`.
    /// No-op on the wall transport (real compute takes real time).
    pub fn compute(&mut self, flops: f64, prim: Primitive) {
        if let Timing::Virtual { clock, cost } = &mut self.timing {
            *clock += cost.compute_time(flops, prim);
        }
    }

    /// Advance the local clock by raw seconds (model hooks). No-op on
    /// the wall transport.
    pub fn advance(&mut self, seconds: f64) {
        if let Timing::Virtual { clock, .. } = &mut self.timing {
            *clock += seconds;
        }
    }

    /// Account one blocked interval: the `CommWaitNs` histogram plus
    /// the per-rank accumulator behind [`comm_wait_ns`](Self::comm_wait_ns).
    fn note_wait(&mut self, since: Instant) {
        let ns = since.elapsed().as_nanos() as u64;
        self.comm_wait_ns += ns;
        histogram::record(Hist::CommWaitNs, ns);
    }

    /// Account one consumed message against the receive-side counters.
    fn note_recv(&mut self, words: usize) {
        let bytes = words * 8;
        self.bytes_recv += bytes;
        metrics::add(Counter::CommRecvBytes, bytes as u64);
        metrics::incr(Counter::CommRecvMessages);
    }

    /// Tagged send of a vector of doubles. Models a *blocking put*
    /// (shmem semantics: the call returns when the remote write has
    /// completed), so consecutive sends from one rank serialize on the
    /// sender's clock.
    pub fn send(&mut self, to: usize, tag: u64, data: &[f64]) {
        assert!(to < self.np && to != self.rank, "bad destination {to}");
        let bytes = data.len() * 8;
        self.bytes_sent += bytes;
        metrics::add(Counter::CommBytes, bytes as u64);
        metrics::incr(Counter::CommMessages);
        let arrive = match &mut self.timing {
            Timing::Virtual { clock, cost } => {
                *clock += cost.p2p_time(bytes);
                *clock
            }
            // Real channels deliver when they deliver; the arrival
            // stamp is unused on the wall transport.
            Timing::Wall { .. } => 0.0,
        };
        self.senders[to]
            .send(Msg {
                tag,
                data: data.to_vec(),
                arrive,
            })
            // bs-lint: allow(no-panic-paths) -- a hung-up receiver means its rank thread panicked; propagate
            .expect("receiver hung up");
    }

    /// Blocking selective receive: next message from `from` carrying
    /// `tag`. On the virtual transport the clock advances to at least
    /// the arrival time; on both transports the blocked interval lands
    /// in `CommWaitNs` and the payload in the receive-side counters.
    pub fn recv(&mut self, from: usize, tag: u64) -> Vec<f64> {
        assert!(from < self.np && from != self.rank, "bad source {from}");
        // Check the stash first: already off the wire, zero wait.
        if let Some(pos) = self.stash[from].iter().position(|m| m.tag == tag) {
            // bs-lint: allow(no-panic-paths) -- `pos` comes from `position` on the same deque one line up
            let msg = self.stash[from].remove(pos).unwrap();
            if let Timing::Virtual { clock, .. } = &mut self.timing {
                *clock = clock.max(msg.arrive);
            }
            self.note_recv(msg.data.len());
            return msg.data;
        }
        let waiting_since = Instant::now();
        loop {
            // Bounded waits so a peer's panic (which poisons the group)
            // fails this rank instead of deadlocking it.
            match self.inboxes[from].recv_timeout(Duration::from_millis(50)) {
                Ok(msg) => {
                    if msg.tag == tag {
                        if let Timing::Virtual { clock, .. } = &mut self.timing {
                            *clock = clock.max(msg.arrive);
                        }
                        self.note_wait(waiting_since);
                        self.note_recv(msg.data.len());
                        return msg.data;
                    }
                    self.stash[from].push_back(msg);
                }
                Err(RecvTimeoutError::Timeout) => {
                    if self.poisoned.load(Ordering::Relaxed) {
                        // bs-lint: allow(no-panic-paths) -- poison flag observed while polling recv: a peer rank panicked mid-exchange, so this rank unwinds too
                        panic!("recv aborted: another rank panicked");
                    }
                    if let Some(deadline) = self.recv_deadline {
                        if waiting_since.elapsed() >= deadline {
                            // bs-lint: allow(no-panic-paths) -- a receive past the deadline is a message-schedule bug; name the stuck edge instead of deadlocking
                            panic!(
                                "recv timed out: rank {} waited {:.1?} for a message from rank {from} with tag {tag} (message schedule mismatch or stuck peer)",
                                self.rank,
                                waiting_since.elapsed(),
                            );
                        }
                    }
                }
                // bs-lint: allow(no-panic-paths) -- a disconnected sender means its rank thread panicked; propagate
                Err(RecvTimeoutError::Disconnected) => panic!("sender hung up"),
            }
        }
    }

    /// Broadcast from `root`: returns the payload on every rank. Every
    /// participant's clock advances by the model's broadcast time on
    /// top of the root's departure time (shmem_broadcast semantics:
    /// all PEs participate).
    pub fn broadcast(&mut self, root: usize, tag: u64, data: &[f64]) -> Vec<f64> {
        let bytes = data.len() * 8;
        self.broadcast_charged(root, tag, data, bytes)
    }

    /// [`broadcast`](Self::broadcast) with an explicit *charged* byte
    /// count. Used when the physically shipped payload differs from the
    /// volume the machine model should account (e.g. the simulator
    /// ships a raw pivot panel for determinism but charges the wire
    /// size of the chosen block-reflector representation).
    pub fn broadcast_charged(
        &mut self,
        root: usize,
        tag: u64,
        data: &[f64],
        bytes: usize,
    ) -> Vec<f64> {
        if self.rank == root {
            let arrive = match &mut self.timing {
                Timing::Virtual { clock, cost } => {
                    *clock += cost.broadcast_time(bytes, self.np);
                    *clock
                }
                Timing::Wall { .. } => 0.0,
            };
            for to in 0..self.np {
                if to != root {
                    self.bytes_sent += bytes;
                    metrics::add(Counter::CommBytes, bytes as u64);
                    metrics::incr(Counter::CommMessages);
                    self.senders[to]
                        .send(Msg {
                            tag,
                            data: data.to_vec(),
                            arrive,
                        })
                        // bs-lint: allow(no-panic-paths) -- bcast fan-out: a receiver that dropped its channel end is a panicked rank; the root propagates
                        .expect("receiver hung up");
                }
            }
            data.to_vec()
        } else {
            self.recv(root, tag)
        }
    }

    /// Barrier: blocks until all ranks arrive. Virtual clocks
    /// synchronize to the maximum plus the model's barrier cost; the
    /// wall transport just records the blocked interval.
    pub fn barrier(&mut self) {
        self.allreduce_max(0.0);
    }

    /// Max-reduction of a scalar across all ranks (synchronizing).
    pub fn allreduce_max(&mut self, v: f64) -> f64 {
        let entered = Instant::now();
        let clock_in = match &self.timing {
            Timing::Virtual { clock, .. } => *clock,
            Timing::Wall { .. } => 0.0,
        };
        let (maxc, maxv) = self.barrier.wait(clock_in, v);
        self.note_wait(entered);
        if let Timing::Virtual { clock, cost } = &mut self.timing {
            *clock = maxc + cost.barrier_time(self.np);
        }
        maxv
    }

    /// Gather each rank's payload at `root` (rank order). Non-roots
    /// return `None`.
    pub fn gather(&mut self, root: usize, tag: u64, data: &[f64]) -> Option<Vec<Vec<f64>>> {
        if self.rank == root {
            let mut out: Vec<Vec<f64>> = Vec::with_capacity(self.np);
            for src in 0..self.np {
                if src == root {
                    out.push(data.to_vec());
                } else {
                    out.push(self.recv(src, tag));
                }
            }
            Some(out)
        } else {
            self.send(root, tag, data);
            None
        }
    }

    /// All-gather: every rank receives every rank's payload, in rank
    /// order. Implemented as gather-at-0 plus broadcast of the packed
    /// buffer (costs accounted through those primitives).
    pub fn allgather(&mut self, tag: u64, data: &[f64]) -> Vec<Vec<f64>> {
        let len = data.len();
        let packed = match self.gather(0, tag, data) {
            Some(parts) => {
                let mut flat = Vec::with_capacity(self.np * len);
                for p in &parts {
                    assert_eq!(p.len(), len, "allgather requires equal payload sizes");
                    flat.extend_from_slice(p);
                }
                self.broadcast(0, tag.wrapping_add(1), &flat)
            }
            None => self.broadcast(0, tag.wrapping_add(1), &[]),
        };
        packed.chunks(len.max(1)).map(|c| c.to_vec()).collect()
    }
}

/// Factory for a group of communicating ranks.
pub struct World;

impl World {
    /// Run `f` on `np` ranks (one thread each) under the virtual-clock
    /// transport and collect the return values indexed by rank. Panics
    /// in any rank propagate.
    pub fn run<T, F>(np: usize, cost: Arc<dyn CostModel>, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&mut Proc) -> T + Send + Sync,
    {
        World::run_inner(
            np,
            |_| Timing::Virtual {
                clock: 0.0,
                cost: Arc::clone(&cost),
            },
            None,
            f,
        )
    }

    /// Run `f` on `np` ranks under the wall-clock transport: each rank
    /// is a dedicated OS thread, `time()` reports real elapsed seconds
    /// since the group launched (one shared epoch, taken just before
    /// the rank threads spawn), and `compute`/`advance` are no-ops.
    /// Panics in any rank propagate; a blocked `recv` converts into a
    /// diagnostic panic after [`WallOpts::recv_deadline`].
    pub fn run_wall<T, F>(np: usize, opts: WallOpts, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&mut Proc) -> T + Send + Sync,
    {
        let epoch = Instant::now();
        World::run_inner(np, |_| Timing::Wall { start: epoch }, opts.recv_deadline, f)
    }

    fn run_inner<T, F>(
        np: usize,
        timing_for: impl Fn(usize) -> Timing,
        recv_deadline: Option<Duration>,
        f: F,
    ) -> Vec<T>
    where
        T: Send,
        F: Fn(&mut Proc) -> T + Send + Sync,
    {
        assert!(np >= 1, "need at least one rank");
        // Channel matrix: link[from][to].
        let mut senders: Vec<Vec<Sender<Msg>>> = (0..np).map(|_| Vec::with_capacity(np)).collect();
        let mut inboxes: Vec<Vec<Receiver<Msg>>> =
            (0..np).map(|_| Vec::with_capacity(np)).collect();
        for from in 0..np {
            for to in 0..np {
                let (s, r) = channel();
                senders[from].push(s);
                inboxes[to].push(r);
            }
        }
        let barrier = Arc::new(ClockBarrier::new(np));
        let poisoned = Arc::new(AtomicBool::new(false));
        let mut procs: Vec<Proc> = senders
            .into_iter()
            .zip(inboxes)
            .enumerate()
            .map(|(rank, (s, r))| Proc {
                rank,
                np,
                timing: timing_for(rank),
                bytes_sent: 0,
                bytes_recv: 0,
                comm_wait_ns: 0,
                recv_deadline,
                senders: s,
                stash: (0..np).map(|_| VecDeque::new()).collect(),
                inboxes: r,
                barrier: Arc::clone(&barrier),
                poisoned: Arc::clone(&poisoned),
            })
            .collect();

        let f = &f;
        std::thread::scope(|scope| {
            let handles: Vec<_> = procs
                .iter_mut()
                .map(|p| {
                    let barrier = Arc::clone(&barrier);
                    let poisoned = Arc::clone(&poisoned);
                    scope.spawn(move || {
                        let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(p)));
                        if out.is_err() {
                            // Fail the whole group instead of leaving
                            // peers blocked in barriers or receives.
                            poisoned.store(true, Ordering::Relaxed);
                            barrier.poison();
                        }
                        match out {
                            Ok(v) => v,
                            Err(e) => std::panic::resume_unwind(e),
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(v) => v,
                    Err(e) => std::panic::resume_unwind(e),
                })
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{UniformCost, ZeroCost};

    #[test]
    fn ring_pass_accumulates() {
        let np = 5;
        let out = World::run(np, Arc::new(ZeroCost), |p| {
            // Pass a counter around the ring, each rank increments.
            if p.rank() == 0 {
                p.send(1, 0, &[1.0]);
                let v = p.recv(np - 1, 0);
                v[0]
            } else {
                let v = p.recv(p.rank() - 1, 0);
                let next = (p.rank() + 1) % np;
                p.send(next, 0, &[v[0] + 1.0]);
                v[0]
            }
        });
        assert_eq!(out[0], np as f64);
        assert_eq!(out[2], 2.0);
    }

    #[test]
    fn broadcast_delivers_payload_everywhere() {
        let out = World::run(4, Arc::new(ZeroCost), |p| {
            let data: Vec<f64> = if p.rank() == 2 {
                vec![3.5, 4.5]
            } else {
                vec![]
            };
            p.broadcast(2, 7, &data)
        });
        for v in out {
            assert_eq!(v, vec![3.5, 4.5]);
        }
    }

    #[test]
    fn selective_receive_by_tag() {
        let out = World::run(2, Arc::new(ZeroCost), |p| {
            if p.rank() == 0 {
                p.send(1, 10, &[10.0]);
                p.send(1, 20, &[20.0]);
                0.0
            } else {
                // Receive in reverse tag order.
                let b = p.recv(0, 20);
                let a = p.recv(0, 10);
                a[0] * 100.0 + b[0]
            }
        });
        assert_eq!(out[1], 1020.0);
    }

    #[test]
    fn clocks_advance_with_compute_and_sync_at_barrier() {
        let cost = Arc::new(UniformCost {
            flop_rate: 1e6,
            bandwidth: 1e9,
            latency: 0.0,
            barrier_per_stage: 0.0,
        });
        let out = World::run(3, cost, |p| {
            // Rank r does (r+1)e6 flops -> (r+1) seconds.
            p.compute(1e6 * (p.rank() + 1) as f64, Primitive::Generic);
            p.barrier();
            p.time()
        });
        // After the barrier every clock equals the slowest rank's 3s.
        for t in out {
            assert!((t - 3.0).abs() < 1e-12, "t = {t}");
        }
    }

    #[test]
    fn message_time_includes_latency_and_bandwidth() {
        let cost = Arc::new(UniformCost {
            flop_rate: 1e9,
            bandwidth: 800.0, // 100 doubles per second
            latency: 0.5,
            barrier_per_stage: 0.0,
        });
        let out = World::run(2, cost, |p| {
            if p.rank() == 0 {
                p.send(1, 0, &vec![0.0; 100]); // 800 bytes -> 1 s + 0.5 s
                p.time()
            } else {
                p.recv(0, 0);
                p.time()
            }
        });
        // Blocking-put semantics: sender and receiver both reach the
        // completion time of the transfer.
        assert!((out[0] - 1.5).abs() < 1e-9, "sender blocks: {}", out[0]);
        assert!(
            (out[1] - 1.5).abs() < 1e-9,
            "receiver at arrival: {}",
            out[1]
        );
    }

    #[test]
    fn allreduce_max_returns_global_max() {
        let out = World::run(4, Arc::new(ZeroCost), |p| {
            p.allreduce_max(p.rank() as f64 * 2.0)
        });
        for v in out {
            assert_eq!(v, 6.0);
        }
    }

    #[test]
    fn single_rank_world_works() {
        let out = World::run(1, Arc::new(ZeroCost), |p| {
            p.barrier();
            p.compute(100.0, Primitive::Generic);
            p.rank()
        });
        assert_eq!(out, vec![0]);
    }

    #[test]
    fn bytes_sent_accounting() {
        let out = World::run(2, Arc::new(ZeroCost), |p| {
            if p.rank() == 0 {
                p.send(1, 0, &[1.0, 2.0, 3.0]);
                p.bytes_sent()
            } else {
                p.recv(0, 0);
                p.bytes_sent()
            }
        });
        assert_eq!(out[0], 24);
        assert_eq!(out[1], 0);
    }
}

#[cfg(test)]
mod collective_tests {
    use super::*;
    use crate::cost::ZeroCost;

    #[test]
    fn gather_collects_in_rank_order() {
        let out = World::run(4, Arc::new(ZeroCost), |p| {
            let mine = vec![p.rank() as f64; 2];
            p.gather(1, 9, &mine)
        });
        assert!(out[0].is_none() && out[2].is_none());
        let parts = out[1].as_ref().unwrap();
        for (r, part) in parts.iter().enumerate() {
            assert_eq!(part, &vec![r as f64; 2]);
        }
    }

    #[test]
    fn allgather_gives_everyone_everything() {
        let out = World::run(3, Arc::new(ZeroCost), |p| {
            p.allgather(5, &[10.0 * p.rank() as f64])
        });
        for parts in out {
            assert_eq!(parts.len(), 3);
            for (r, part) in parts.iter().enumerate() {
                assert_eq!(part, &vec![10.0 * r as f64]);
            }
        }
    }

    #[test]
    fn gather_advances_root_clock_past_senders() {
        let cost = Arc::new(crate::cost::UniformCost {
            flop_rate: 1e9,
            bandwidth: 8e3,
            latency: 0.0,
            barrier_per_stage: 0.0,
        });
        let out = World::run(2, cost, |p| {
            if p.rank() == 0 {
                p.gather(0, 1, &[0.0; 100]);
                p.time()
            } else {
                p.gather(0, 1, &[0.0; 100]);
                0.0
            }
        });
        // 100 doubles at 8 kB/s = 0.1 s transfer visible at the root.
        assert!(out[0] >= 0.1 - 1e-12, "root time {}", out[0]);
    }
}

#[cfg(test)]
mod wall_tests {
    use super::*;

    #[test]
    fn wall_time_is_real_and_compute_is_noop() {
        let out = World::run_wall(2, WallOpts::default(), |p| {
            let t0 = p.time();
            // A virtual-model charge must NOT advance wall time.
            p.compute(1e12, Primitive::Generic);
            p.advance(1e6);
            std::thread::sleep(Duration::from_millis(20));
            p.barrier();
            (t0, p.time())
        });
        for (t0, t1) in out {
            assert!(t0 < 1.0, "epoch starts near zero, got {t0}");
            let waited = t1 - t0;
            assert!(
                (0.015..10.0).contains(&waited),
                "wall elapsed should track the real sleep, got {waited}"
            );
        }
    }

    #[test]
    fn wall_send_recv_round_trip_is_bit_exact() {
        // Exotic payloads: signed zero, subnormal, inf, and a NaN with
        // a distinctive bit pattern must cross ranks unchanged.
        let payload = [
            f64::from_bits(0x8000_0000_0000_0000), // -0.0
            f64::from_bits(0x0000_0000_0000_0001), // min subnormal
            f64::INFINITY,
            f64::from_bits(0x7ff8_dead_beef_cafe), // payload-carrying NaN
            -1.5e-308,
        ];
        let out = World::run_wall(3, WallOpts::default(), |p| {
            p.broadcast(1, 7, if p.rank() == 1 { &payload } else { &[] })
        });
        for got in out {
            assert_eq!(got.len(), payload.len());
            for (g, want) in got.iter().zip(payload.iter()) {
                assert_eq!(
                    g.to_bits(),
                    want.to_bits(),
                    "payload bits changed in flight"
                );
            }
        }
    }

    #[test]
    fn recv_accounting_tracks_bytes_and_wait() {
        let out = World::run_wall(2, WallOpts::default(), |p| {
            if p.rank() == 0 {
                std::thread::sleep(Duration::from_millis(15));
                p.send(1, 3, &[1.0; 64]);
                (p.bytes_sent(), p.bytes_received(), p.comm_wait_ns())
            } else {
                let v = p.recv(0, 3);
                assert_eq!(v.len(), 64);
                (p.bytes_sent(), p.bytes_received(), p.comm_wait_ns())
            }
        });
        assert_eq!(out[0], (512, 0, 0));
        let (sent, recvd, wait_ns) = out[1];
        assert_eq!((sent, recvd), (0, 512));
        assert!(
            wait_ns >= 10_000_000,
            "receiver blocked ~15ms, recorded {wait_ns}ns"
        );
    }

    #[test]
    fn recv_deadline_names_the_stuck_edge() {
        let result = std::panic::catch_unwind(|| {
            World::run_wall(
                2,
                WallOpts {
                    recv_deadline: Some(Duration::from_millis(120)),
                },
                |p| {
                    if p.rank() == 1 {
                        // Rank 0 never sends tag 42; rank 1 must fail
                        // with a diagnostic instead of hanging.
                        p.recv(0, 42);
                    } else {
                        // Keep rank 0 alive (no poison) past the
                        // deadline so the timeout itself fires.
                        std::thread::sleep(Duration::from_millis(400));
                    }
                },
            )
        });
        let err = result.expect_err("deadline must fire");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(
            msg.contains("rank 1") && msg.contains("from rank 0") && msg.contains("tag 42"),
            "diagnostic must name the stuck (rank, source, tag): {msg}"
        );
    }

    #[test]
    fn wall_runs_are_bitwise_reproducible() {
        // Same exchange twice: the delivered data (not the timing) must
        // be identical run to run.
        let run = || {
            World::run_wall(4, WallOpts::default(), |p| {
                let mine = vec![1.0 / (p.rank() as f64 + 3.0); 8];
                let all = p.allgather(11, &mine);
                all.into_iter()
                    .flatten()
                    .map(f64::to_bits)
                    .collect::<Vec<u64>>()
            })
        };
        assert_eq!(run(), run());
    }
}

#[cfg(test)]
mod poison_tests {
    use super::*;
    use crate::cost::ZeroCost;

    #[test]
    fn rank_panic_fails_the_group_instead_of_deadlocking() {
        // Rank 1 panics before its barrier; ranks 0 and 2 must not hang.
        let result = std::panic::catch_unwind(|| {
            World::run(3, Arc::new(ZeroCost), |p| {
                if p.rank() == 1 {
                    panic!("injected failure");
                }
                p.barrier();
                p.rank()
            })
        });
        assert!(result.is_err(), "the group must report the failure");
    }

    #[test]
    fn rank_panic_unblocks_receivers() {
        // Rank 0 waits for a message rank 1 never sends (it panics).
        let result = std::panic::catch_unwind(|| {
            World::run(2, Arc::new(ZeroCost), |p| {
                if p.rank() == 1 {
                    panic!("injected failure");
                }
                p.recv(1, 0)
            })
        });
        assert!(result.is_err());
    }
}
