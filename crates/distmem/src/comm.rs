//! The communicator: ranks as threads, channels as links, virtual
//! clocks for timing.

use crate::cost::{CostModel, Primitive};
use bs_probe::metrics::{self, Counter};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// Lock recovering from poisoning: a rank's panic must not wedge the
/// whole group (ClockBarrier deliberately panics while holding its
/// lock when the group is poisoned).
fn lock_poison_ok<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A message in flight: payload plus its virtual arrival time.
struct Msg {
    tag: u64,
    data: Vec<f64>,
    arrive: f64,
}

/// Reusable barrier that also reduces the participating clocks to
/// their maximum (and optionally max-reduces one payload value).
struct ClockBarrier {
    state: Mutex<BarrierState>,
    cv: Condvar,
    np: usize,
}

#[derive(Default)]
struct BarrierState {
    count: usize,
    generation: u64,
    max_clock: f64,
    max_payload: f64,
    result_clock: f64,
    result_payload: f64,
    /// Set when a rank panicked: wakes and fails every waiter instead
    /// of deadlocking the group.
    poisoned: bool,
}

impl ClockBarrier {
    fn new(np: usize) -> Self {
        ClockBarrier {
            state: Mutex::new(BarrierState {
                max_clock: f64::NEG_INFINITY,
                max_payload: f64::NEG_INFINITY,
                ..Default::default()
            }),
            cv: Condvar::new(),
            np,
        }
    }

    /// Returns `(max clock, max payload)` across all participants.
    /// Panics if the group was poisoned by another rank's panic.
    fn wait(&self, clock: f64, payload: f64) -> (f64, f64) {
        let mut st = lock_poison_ok(&self.state);
        if st.poisoned {
            // bs-lint: allow(no-panic-paths) -- another simulated rank already panicked; propagating is the only sane exit
            panic!("barrier poisoned: another rank panicked");
        }
        st.max_clock = st.max_clock.max(clock);
        st.max_payload = st.max_payload.max(payload);
        st.count += 1;
        if st.count == self.np {
            st.result_clock = st.max_clock;
            st.result_payload = st.max_payload;
            st.count = 0;
            st.max_clock = f64::NEG_INFINITY;
            st.max_payload = f64::NEG_INFINITY;
            st.generation = st.generation.wrapping_add(1);
            self.cv.notify_all();
            (st.result_clock, st.result_payload)
        } else {
            let gen = st.generation;
            while st.generation == gen && !st.poisoned {
                st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
            if st.poisoned {
                // bs-lint: allow(no-panic-paths) -- the group poisoned while this rank slept on the condvar; unwind exactly like the pre-wait check above
                panic!("barrier poisoned: another rank panicked");
            }
            (st.result_clock, st.result_payload)
        }
    }

    /// Mark the group as failed and wake every waiter.
    fn poison(&self) {
        let mut st = lock_poison_ok(&self.state);
        st.poisoned = true;
        self.cv.notify_all();
    }
}

/// One rank's endpoint: use inside the closure passed to [`World::run`].
pub struct Proc {
    rank: usize,
    np: usize,
    clock: f64,
    /// Bytes sent (p2p + broadcast contributions), for diagnostics.
    bytes_sent: usize,
    /// `senders[to]` delivers to rank `to`'s inbox from this rank.
    senders: Vec<Sender<Msg>>,
    /// `inboxes[from]` receives messages sent by rank `from`.
    inboxes: Vec<Receiver<Msg>>,
    /// Out-of-order stash per source (selective receive by tag).
    stash: Vec<VecDeque<Msg>>,
    barrier: Arc<ClockBarrier>,
    poisoned: Arc<AtomicBool>,
    cost: Arc<dyn CostModel>,
}

impl Proc {
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    #[inline]
    pub fn num_ranks(&self) -> usize {
        self.np
    }

    /// Current virtual time at this rank.
    #[inline]
    pub fn time(&self) -> f64 {
        self.clock
    }

    /// Total bytes this rank has pushed into the network.
    #[inline]
    pub fn bytes_sent(&self) -> usize {
        self.bytes_sent
    }

    /// Advance the local clock by the cost of `flops` in shape `prim`.
    pub fn compute(&mut self, flops: f64, prim: Primitive) {
        self.clock += self.cost.compute_time(flops, prim);
    }

    /// Advance the local clock by raw seconds (model hooks).
    pub fn advance(&mut self, seconds: f64) {
        self.clock += seconds;
    }

    /// Tagged send of a vector of doubles. Models a *blocking put*
    /// (shmem semantics: the call returns when the remote write has
    /// completed), so consecutive sends from one rank serialize on the
    /// sender's clock.
    pub fn send(&mut self, to: usize, tag: u64, data: &[f64]) {
        assert!(to < self.np && to != self.rank, "bad destination {to}");
        let bytes = data.len() * 8;
        self.bytes_sent += bytes;
        metrics::add(Counter::CommBytes, bytes as u64);
        metrics::incr(Counter::CommMessages);
        self.clock += self.cost.p2p_time(bytes);
        let arrive = self.clock;
        self.senders[to]
            .send(Msg {
                tag,
                data: data.to_vec(),
                arrive,
            })
            // bs-lint: allow(no-panic-paths) -- a hung-up receiver means its rank thread panicked; propagate
            .expect("receiver hung up");
    }

    /// Blocking selective receive: next message from `from` carrying
    /// `tag`. Advances the clock to at least the arrival time.
    pub fn recv(&mut self, from: usize, tag: u64) -> Vec<f64> {
        assert!(from < self.np && from != self.rank, "bad source {from}");
        // Check the stash first.
        if let Some(pos) = self.stash[from].iter().position(|m| m.tag == tag) {
            // bs-lint: allow(no-panic-paths) -- `pos` comes from `position` on the same deque one line up
            let msg = self.stash[from].remove(pos).unwrap();
            self.clock = self.clock.max(msg.arrive);
            return msg.data;
        }
        loop {
            // Bounded waits so a peer's panic (which poisons the group)
            // fails this rank instead of deadlocking it.
            match self.inboxes[from].recv_timeout(Duration::from_millis(50)) {
                Ok(msg) => {
                    if msg.tag == tag {
                        self.clock = self.clock.max(msg.arrive);
                        return msg.data;
                    }
                    self.stash[from].push_back(msg);
                }
                Err(RecvTimeoutError::Timeout) => {
                    if self.poisoned.load(Ordering::Relaxed) {
                        // bs-lint: allow(no-panic-paths) -- poison flag observed while polling recv: a peer rank panicked mid-exchange, so this rank unwinds too
                        panic!("recv aborted: another rank panicked");
                    }
                }
                // bs-lint: allow(no-panic-paths) -- a disconnected sender means its rank thread panicked; propagate
                Err(RecvTimeoutError::Disconnected) => panic!("sender hung up"),
            }
        }
    }

    /// Broadcast from `root`: returns the payload on every rank. Every
    /// participant's clock advances by the model's broadcast time on
    /// top of the root's departure time (shmem_broadcast semantics:
    /// all PEs participate).
    pub fn broadcast(&mut self, root: usize, tag: u64, data: &[f64]) -> Vec<f64> {
        let bytes = data.len() * 8;
        self.broadcast_charged(root, tag, data, bytes)
    }

    /// [`broadcast`](Self::broadcast) with an explicit *charged* byte
    /// count. Used when the physically shipped payload differs from the
    /// volume the machine model should account (e.g. the simulator
    /// ships a raw pivot panel for determinism but charges the wire
    /// size of the chosen block-reflector representation).
    pub fn broadcast_charged(
        &mut self,
        root: usize,
        tag: u64,
        data: &[f64],
        bytes: usize,
    ) -> Vec<f64> {
        let bcast = self.cost.broadcast_time(bytes, self.np);
        if self.rank == root {
            let depart = self.clock;
            for to in 0..self.np {
                if to != root {
                    self.bytes_sent += bytes;
                    metrics::add(Counter::CommBytes, bytes as u64);
                    metrics::incr(Counter::CommMessages);
                    self.senders[to]
                        .send(Msg {
                            tag,
                            data: data.to_vec(),
                            arrive: depart + bcast,
                        })
                        // bs-lint: allow(no-panic-paths) -- bcast fan-out: a receiver that dropped its channel end is a panicked rank; the root propagates
                        .expect("receiver hung up");
                }
            }
            self.clock = depart + bcast;
            data.to_vec()
        } else {
            self.recv(root, tag)
        }
    }

    /// Barrier: blocks until all ranks arrive; clocks synchronize to
    /// the maximum plus the model's barrier cost.
    pub fn barrier(&mut self) {
        let (maxc, _) = self.barrier.wait(self.clock, 0.0);
        self.clock = maxc + self.cost.barrier_time(self.np);
    }

    /// Max-reduction of a scalar across all ranks (synchronizing).
    pub fn allreduce_max(&mut self, v: f64) -> f64 {
        let (maxc, maxv) = self.barrier.wait(self.clock, v);
        self.clock = maxc + self.cost.barrier_time(self.np);
        maxv
    }

    /// Gather each rank's payload at `root` (rank order). Non-roots
    /// return `None`.
    pub fn gather(&mut self, root: usize, tag: u64, data: &[f64]) -> Option<Vec<Vec<f64>>> {
        if self.rank == root {
            let mut out: Vec<Vec<f64>> = Vec::with_capacity(self.np);
            for src in 0..self.np {
                if src == root {
                    out.push(data.to_vec());
                } else {
                    out.push(self.recv(src, tag));
                }
            }
            Some(out)
        } else {
            self.send(root, tag, data);
            None
        }
    }

    /// All-gather: every rank receives every rank's payload, in rank
    /// order. Implemented as gather-at-0 plus broadcast of the packed
    /// buffer (costs accounted through those primitives).
    pub fn allgather(&mut self, tag: u64, data: &[f64]) -> Vec<Vec<f64>> {
        let len = data.len();
        let packed = match self.gather(0, tag, data) {
            Some(parts) => {
                let mut flat = Vec::with_capacity(self.np * len);
                for p in &parts {
                    assert_eq!(p.len(), len, "allgather requires equal payload sizes");
                    flat.extend_from_slice(p);
                }
                self.broadcast(0, tag.wrapping_add(1), &flat)
            }
            None => self.broadcast(0, tag.wrapping_add(1), &[]),
        };
        packed.chunks(len.max(1)).map(|c| c.to_vec()).collect()
    }
}

/// Factory for a group of communicating ranks.
pub struct World;

impl World {
    /// Run `f` on `np` ranks (one thread each) and collect the return
    /// values indexed by rank. Panics in any rank propagate.
    pub fn run<T, F>(np: usize, cost: Arc<dyn CostModel>, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&mut Proc) -> T + Send + Sync,
    {
        assert!(np >= 1, "need at least one rank");
        // Channel matrix: link[from][to].
        let mut senders: Vec<Vec<Sender<Msg>>> = (0..np).map(|_| Vec::with_capacity(np)).collect();
        let mut inboxes: Vec<Vec<Receiver<Msg>>> =
            (0..np).map(|_| Vec::with_capacity(np)).collect();
        for from in 0..np {
            for to in 0..np {
                let (s, r) = channel();
                senders[from].push(s);
                inboxes[to].push(r);
            }
        }
        let barrier = Arc::new(ClockBarrier::new(np));
        let poisoned = Arc::new(AtomicBool::new(false));
        let mut procs: Vec<Proc> = senders
            .into_iter()
            .zip(inboxes)
            .enumerate()
            .map(|(rank, (s, r))| Proc {
                rank,
                np,
                clock: 0.0,
                bytes_sent: 0,
                senders: s,
                stash: (0..np).map(|_| VecDeque::new()).collect(),
                inboxes: r,
                barrier: Arc::clone(&barrier),
                poisoned: Arc::clone(&poisoned),
                cost: Arc::clone(&cost),
            })
            .collect();

        let f = &f;
        std::thread::scope(|scope| {
            let handles: Vec<_> = procs
                .iter_mut()
                .map(|p| {
                    let barrier = Arc::clone(&barrier);
                    let poisoned = Arc::clone(&poisoned);
                    scope.spawn(move || {
                        let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(p)));
                        if out.is_err() {
                            // Fail the whole group instead of leaving
                            // peers blocked in barriers or receives.
                            poisoned.store(true, Ordering::Relaxed);
                            barrier.poison();
                        }
                        match out {
                            Ok(v) => v,
                            Err(e) => std::panic::resume_unwind(e),
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(v) => v,
                    Err(e) => std::panic::resume_unwind(e),
                })
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{UniformCost, ZeroCost};

    #[test]
    fn ring_pass_accumulates() {
        let np = 5;
        let out = World::run(np, Arc::new(ZeroCost), |p| {
            // Pass a counter around the ring, each rank increments.
            if p.rank() == 0 {
                p.send(1, 0, &[1.0]);
                let v = p.recv(np - 1, 0);
                v[0]
            } else {
                let v = p.recv(p.rank() - 1, 0);
                let next = (p.rank() + 1) % np;
                p.send(next, 0, &[v[0] + 1.0]);
                v[0]
            }
        });
        assert_eq!(out[0], np as f64);
        assert_eq!(out[2], 2.0);
    }

    #[test]
    fn broadcast_delivers_payload_everywhere() {
        let out = World::run(4, Arc::new(ZeroCost), |p| {
            let data: Vec<f64> = if p.rank() == 2 {
                vec![3.5, 4.5]
            } else {
                vec![]
            };
            p.broadcast(2, 7, &data)
        });
        for v in out {
            assert_eq!(v, vec![3.5, 4.5]);
        }
    }

    #[test]
    fn selective_receive_by_tag() {
        let out = World::run(2, Arc::new(ZeroCost), |p| {
            if p.rank() == 0 {
                p.send(1, 10, &[10.0]);
                p.send(1, 20, &[20.0]);
                0.0
            } else {
                // Receive in reverse tag order.
                let b = p.recv(0, 20);
                let a = p.recv(0, 10);
                a[0] * 100.0 + b[0]
            }
        });
        assert_eq!(out[1], 1020.0);
    }

    #[test]
    fn clocks_advance_with_compute_and_sync_at_barrier() {
        let cost = Arc::new(UniformCost {
            flop_rate: 1e6,
            bandwidth: 1e9,
            latency: 0.0,
            barrier_per_stage: 0.0,
        });
        let out = World::run(3, cost, |p| {
            // Rank r does (r+1)e6 flops -> (r+1) seconds.
            p.compute(1e6 * (p.rank() + 1) as f64, Primitive::Generic);
            p.barrier();
            p.time()
        });
        // After the barrier every clock equals the slowest rank's 3s.
        for t in out {
            assert!((t - 3.0).abs() < 1e-12, "t = {t}");
        }
    }

    #[test]
    fn message_time_includes_latency_and_bandwidth() {
        let cost = Arc::new(UniformCost {
            flop_rate: 1e9,
            bandwidth: 800.0, // 100 doubles per second
            latency: 0.5,
            barrier_per_stage: 0.0,
        });
        let out = World::run(2, cost, |p| {
            if p.rank() == 0 {
                p.send(1, 0, &vec![0.0; 100]); // 800 bytes -> 1 s + 0.5 s
                p.time()
            } else {
                p.recv(0, 0);
                p.time()
            }
        });
        // Blocking-put semantics: sender and receiver both reach the
        // completion time of the transfer.
        assert!((out[0] - 1.5).abs() < 1e-9, "sender blocks: {}", out[0]);
        assert!(
            (out[1] - 1.5).abs() < 1e-9,
            "receiver at arrival: {}",
            out[1]
        );
    }

    #[test]
    fn allreduce_max_returns_global_max() {
        let out = World::run(4, Arc::new(ZeroCost), |p| {
            p.allreduce_max(p.rank() as f64 * 2.0)
        });
        for v in out {
            assert_eq!(v, 6.0);
        }
    }

    #[test]
    fn single_rank_world_works() {
        let out = World::run(1, Arc::new(ZeroCost), |p| {
            p.barrier();
            p.compute(100.0, Primitive::Generic);
            p.rank()
        });
        assert_eq!(out, vec![0]);
    }

    #[test]
    fn bytes_sent_accounting() {
        let out = World::run(2, Arc::new(ZeroCost), |p| {
            if p.rank() == 0 {
                p.send(1, 0, &[1.0, 2.0, 3.0]);
                p.bytes_sent()
            } else {
                p.recv(0, 0);
                p.bytes_sent()
            }
        });
        assert_eq!(out[0], 24);
        assert_eq!(out[1], 0);
    }
}

#[cfg(test)]
mod collective_tests {
    use super::*;
    use crate::cost::ZeroCost;

    #[test]
    fn gather_collects_in_rank_order() {
        let out = World::run(4, Arc::new(ZeroCost), |p| {
            let mine = vec![p.rank() as f64; 2];
            p.gather(1, 9, &mine)
        });
        assert!(out[0].is_none() && out[2].is_none());
        let parts = out[1].as_ref().unwrap();
        for (r, part) in parts.iter().enumerate() {
            assert_eq!(part, &vec![r as f64; 2]);
        }
    }

    #[test]
    fn allgather_gives_everyone_everything() {
        let out = World::run(3, Arc::new(ZeroCost), |p| {
            p.allgather(5, &[10.0 * p.rank() as f64])
        });
        for parts in out {
            assert_eq!(parts.len(), 3);
            for (r, part) in parts.iter().enumerate() {
                assert_eq!(part, &vec![10.0 * r as f64]);
            }
        }
    }

    #[test]
    fn gather_advances_root_clock_past_senders() {
        let cost = Arc::new(crate::cost::UniformCost {
            flop_rate: 1e9,
            bandwidth: 8e3,
            latency: 0.0,
            barrier_per_stage: 0.0,
        });
        let out = World::run(2, cost, |p| {
            if p.rank() == 0 {
                p.gather(0, 1, &[0.0; 100]);
                p.time()
            } else {
                p.gather(0, 1, &[0.0; 100]);
                0.0
            }
        });
        // 100 doubles at 8 kB/s = 0.1 s transfer visible at the root.
        assert!(out[0] >= 0.1 - 1e-12, "root time {}", out[0]);
    }
}

#[cfg(test)]
mod poison_tests {
    use super::*;
    use crate::cost::ZeroCost;

    #[test]
    fn rank_panic_fails_the_group_instead_of_deadlocking() {
        // Rank 1 panics before its barrier; ranks 0 and 2 must not hang.
        let result = std::panic::catch_unwind(|| {
            World::run(3, Arc::new(ZeroCost), |p| {
                if p.rank() == 1 {
                    panic!("injected failure");
                }
                p.barrier();
                p.rank()
            })
        });
        assert!(result.is_err(), "the group must report the failure");
    }

    #[test]
    fn rank_panic_unblocks_receivers() {
        // Rank 0 waits for a message rank 1 never sends (it panics).
        let result = std::panic::catch_unwind(|| {
            World::run(2, Arc::new(ZeroCost), |p| {
                if p.rank() == 1 {
                    panic!("injected failure");
                }
                p.recv(1, 0)
            })
        });
        assert!(result.is_err());
    }
}
