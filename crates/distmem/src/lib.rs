#![allow(clippy::needless_range_loop)]
// index-heavy numeric kernels read
// clearer with explicit indices when several parallel arrays are walked
// together; iterator-zip rewrites were measured to obscure, not improve.

//! Message-passing substrate with two transports: per-rank *virtual
//! clocks* for simulation and *wall-clock* timing for measured runs.
//!
//! The paper's distributed experiments ran on a Cray T3D with the shmem
//! library (§7.1.4). This crate is the stand-in: ranks are OS threads
//! connected by crossbeam channels, exposing the primitives the
//! distributed Schur algorithm needs — `send`/`recv`, `broadcast`,
//! `barrier` — with the *data movement executed for real* (results are
//! bit-checked against sequential runs) while *time* is tracked either
//! by a per-rank virtual clock advanced through a pluggable
//! [`CostModel`] ([`World::run`]) or by the machine's real clock
//! ([`World::run_wall`], used by the measured sharded executor in
//! `bs-simulator`).
//!
//! The timing rules are the classical LogP-flavoured ones:
//!
//! - `compute(flops, primitive)` advances the local clock by the model's
//!   execution time for that primitive (the model may rate BLAS1/2/3
//!   differently and account for cache-line effects — that is how the
//!   T3D model reproduces Fig. 9);
//! - a message departs at the sender's clock and arrives at
//!   `depart + p2p_time(bytes)`; `recv` advances the receiver to at
//!   least the arrival time;
//! - `barrier` synchronizes every clock to the maximum plus the model's
//!   barrier cost (the paper's explicit "compute/communicate paradigm
//!   with barrier synchronization", §7.1);
//! - `broadcast` costs `broadcast_time(bytes, np)` on every participant.

pub mod comm;
pub mod cost;

pub use comm::{Proc, WallOpts, World};
pub use cost::{CostModel, Primitive, UniformCost, ZeroCost};
