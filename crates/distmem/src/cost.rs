//! Cost models driving the virtual clocks.

/// The computational primitive a [`compute`](crate::Proc::compute) call
/// represents. Models may rate these differently — the whole point of
/// the paper's §6 is that BLAS3 on large operands runs faster per flop
/// than BLAS1/2 on small ones.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Primitive {
    /// Vector-vector work (`axpy`/`dot`) on vectors of this length.
    Blas1 { len: usize },
    /// Matrix-vector work with this minimum operand dimension.
    Blas2 { dim: usize },
    /// Matrix-matrix work; `dim` is the smallest of (m, n, k) — the
    /// dimension that limits register/cache blocking.
    Blas3 { dim: usize },
    /// Unclassified scalar work.
    Generic,
}

/// Machine model: maps work and messages to (virtual) seconds.
pub trait CostModel: Send + Sync {
    /// Seconds to execute `flops` floating point operations in the
    /// shape of `prim`.
    fn compute_time(&self, flops: f64, prim: Primitive) -> f64;
    /// Seconds for a point-to-point message of `bytes` to arrive.
    fn p2p_time(&self, bytes: usize) -> f64;
    /// Seconds for a broadcast of `bytes` to `np` ranks to complete.
    fn broadcast_time(&self, bytes: usize, np: usize) -> f64;
    /// Seconds for a barrier across `np` ranks.
    fn barrier_time(&self, np: usize) -> f64;
}

/// Zero-cost model: virtual time stays 0. For correctness-only tests.
#[derive(Clone, Copy, Debug, Default)]
pub struct ZeroCost;

impl CostModel for ZeroCost {
    fn compute_time(&self, _flops: f64, _prim: Primitive) -> f64 {
        0.0
    }
    fn p2p_time(&self, _bytes: usize) -> f64 {
        0.0
    }
    fn broadcast_time(&self, _bytes: usize, _np: usize) -> f64 {
        0.0
    }
    fn barrier_time(&self, _np: usize) -> f64 {
        0.0
    }
}

/// Flat-rate model: every flop takes `1/flop_rate`, every byte
/// `1/bandwidth`, plus fixed latencies. Useful as a neutral baseline
/// and in unit tests with easily predictable numbers.
#[derive(Clone, Copy, Debug)]
pub struct UniformCost {
    /// Flops per second.
    pub flop_rate: f64,
    /// Bytes per second.
    pub bandwidth: f64,
    /// Seconds per message.
    pub latency: f64,
    /// Seconds per barrier participant (total = `per_rank * log2(np)`).
    pub barrier_per_stage: f64,
}

impl Default for UniformCost {
    fn default() -> Self {
        UniformCost {
            flop_rate: 100e6,
            bandwidth: 100e6,
            latency: 1e-6,
            barrier_per_stage: 2e-6,
        }
    }
}

impl CostModel for UniformCost {
    fn compute_time(&self, flops: f64, _prim: Primitive) -> f64 {
        flops / self.flop_rate
    }
    fn p2p_time(&self, bytes: usize) -> f64 {
        self.latency + bytes as f64 / self.bandwidth
    }
    fn broadcast_time(&self, bytes: usize, np: usize) -> f64 {
        // Binomial tree: ceil(log2 np) stages of p2p.
        let stages = (np.max(1) as f64).log2().ceil().max(1.0);
        stages * self.p2p_time(bytes)
    }
    fn barrier_time(&self, np: usize) -> f64 {
        let stages = (np.max(1) as f64).log2().ceil().max(1.0);
        stages * self.barrier_per_stage
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_cost_is_zero() {
        let z = ZeroCost;
        assert_eq!(z.compute_time(1e9, Primitive::Generic), 0.0);
        assert_eq!(z.p2p_time(1 << 20), 0.0);
        assert_eq!(z.broadcast_time(8, 64), 0.0);
        assert_eq!(z.barrier_time(64), 0.0);
    }

    #[test]
    fn uniform_cost_scales_linearly() {
        let u = UniformCost::default();
        let t1 = u.compute_time(1e6, Primitive::Generic);
        let t2 = u.compute_time(2e6, Primitive::Blas3 { dim: 64 });
        assert!((t2 - 2.0 * t1).abs() < 1e-15);
        assert!(u.p2p_time(1000) > u.p2p_time(100));
        // Broadcast grows logarithmically with np.
        assert!(u.broadcast_time(8, 64) > u.broadcast_time(8, 2));
        assert!(u.broadcast_time(8, 64) < 10.0 * u.broadcast_time(8, 2));
    }
}
