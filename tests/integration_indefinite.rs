//! End-to-end indefinite / singular-minor pipeline tests (§8):
//! extended Schur factorization + iterative refinement, validated
//! against dense LU solutions.

use block_schur::baselines::dense_lu_solve;
use block_schur::prelude::*;

fn max_err(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

#[test]
fn refinement_matches_dense_lu_on_many_singular_minor_systems() {
    for seed in 0..10 {
        let n = 40 + (seed as usize % 3) * 17;
        let t = workloads::singular_minor_scalar(n, 500 + seed);
        let (b, _) = workloads::rhs_for_ones(&t);
        let x_lu = match dense_lu_solve(&t, &b) {
            Ok(x) => x,
            Err(_) => continue, // matrix itself singular: skip
        };
        let f = factor_indefinite(&t, &IndefOptions::default()).unwrap();
        let res = solve_refined(&t, &f, &b, &RefineOptions::default()).unwrap();
        assert!(res.converged, "seed {seed}");
        assert!(
            max_err(&res.x, &x_lu) < 1e-9,
            "seed {seed}: {:e}",
            max_err(&res.x, &x_lu)
        );
    }
}

#[test]
fn indefinite_block_systems_solve() {
    for seed in 0..5 {
        let t = workloads::random_indefinite_block(2, 8, 700 + seed);
        let (b, x_true) = workloads::rhs_for_ones(&t);
        let f = factor_indefinite(&t, &IndefOptions::default()).unwrap();
        let res = solve_refined(&t, &f, &b, &RefineOptions::default()).unwrap();
        assert!(
            max_err(&res.x, &x_true) < 1e-9,
            "seed {seed}: {:e}",
            max_err(&res.x, &x_true)
        );
    }
}

#[test]
fn inertia_matches_dense_ldlt_across_seeds() {
    for seed in 0..8 {
        let t = workloads::random_indefinite_scalar(20, 900 + seed);
        let f = match factor_indefinite(
            &t,
            &IndefOptions {
                allow_perturbation: false,
                ..Default::default()
            },
        ) {
            Ok(f) => f,
            Err(_) => continue, // near-singular minor: skip without perturbation
        };
        let mut dense = t.to_dense();
        let d = match block_schur::matrix::ldlt::ldlt_in_place(dense.mt(), 1e-12) {
            Ok(d) => d,
            Err(_) => continue,
        };
        let neg_dense = d.iter().filter(|&&v| v < 0.0).count();
        assert_eq!(
            f.negative_inertia(),
            neg_dense,
            "seed {seed}: Sylvester inertia mismatch"
        );
    }
}

#[test]
fn delta_tradeoff_larger_delta_needs_more_refinement() {
    // Eq. 45: error ≈ δ + ε/δ². Both very small and very large δ are
    // bad; the direct-solve error grows with δ.
    let t = workloads::paper_singular_minor_example();
    let (b, x_true) = workloads::rhs_for_ones(&t);
    let mut direct_errors = Vec::new();
    for delta in [1e-7, 1e-5, 1e-3] {
        let f = factor_indefinite(
            &t,
            &IndefOptions {
                delta: Some(delta),
                zero_tol: 1e-9,
                ..Default::default()
            },
        )
        .unwrap();
        let x1 = f.solve(&b).unwrap();
        direct_errors.push(max_err(&x1, &x_true));
    }
    // Direct error grows with delta (the δ term of eq. 45 dominates
    // at these magnitudes).
    assert!(
        direct_errors[0] < direct_errors[1] && direct_errors[1] < direct_errors[2],
        "direct errors not monotone in delta: {direct_errors:?}"
    );
    // And refinement cleans all of them up.
    for delta in [1e-7, 1e-5, 1e-3] {
        let f = factor_indefinite(
            &t,
            &IndefOptions {
                delta: Some(delta),
                zero_tol: 1e-9,
                ..Default::default()
            },
        )
        .unwrap();
        let res = solve_refined(&t, &f, &b, &RefineOptions::default()).unwrap();
        assert!(
            max_err(&res.x, &x_true) < 1e-10,
            "delta={delta:e}: {:e}",
            max_err(&res.x, &x_true)
        );
    }
}

#[test]
fn spd_input_through_indefinite_path_matches_spd_driver() {
    let t = workloads::random_spd_scalar(32, 4);
    let fi = factor_indefinite(&t, &IndefOptions::default()).unwrap();
    let fs = factor_spd(&t, &SchurOptions::default()).unwrap();
    assert!(fi.d.iter().all(|&s| s > 0));
    assert!(fi.r.max_abs_diff(&fs.r) < 1e-9);
}

#[test]
fn pcg_and_refinement_agree() {
    let t = workloads::singular_minor_scalar(64, 77);
    let (b, _) = workloads::rhs_for_ones(&t);
    let f = factor_indefinite(&t, &IndefOptions::default()).unwrap();
    let res = solve_refined(&t, &f, &b, &RefineOptions::default()).unwrap();
    let cg = block_schur::baselines::pcg(|v| t.matvec(v), |r| f.solve(r).unwrap(), &b, 1e-13, 50);
    assert!(cg.converged);
    assert!(max_err(&res.x, &cg.x) < 1e-9);
}
