//! Baseline agreement tests: every solver in the workspace must agree
//! on the same systems, and each must fail exactly where theory says.

use block_schur::baselines::{
    cg, dense_cholesky_solve, dense_lu_solve, levinson_solve, scalar_schur_factor,
};
#[allow(unused_imports)]
use block_schur::core::{factor_indefinite, IndefOptions};
use block_schur::prelude::*;

fn max_err(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

fn first_row(t: &SymBlockToeplitz) -> Vec<f64> {
    (0..t.order()).map(|j| t.get(0, j)).collect()
}

#[test]
fn four_solvers_agree_on_spd_scalar_system() {
    let n = 64;
    let t = workloads::random_spd_scalar(n, 13);
    let (b, _) = workloads::rhs_for_ones(&t);

    let x_lev = levinson_solve(&first_row(&t), &b).unwrap();
    let x_chol = dense_cholesky_solve(&t, &b).unwrap();
    let x_lu = dense_lu_solve(&t, &b).unwrap();
    let f = factor_spd(&t, &SchurOptions::default()).unwrap();
    let x_schur = f.solve(&b).unwrap();
    let x_cg = cg(|v| t.matvec(v), &b, 1e-13, 500).x;

    for (label, x) in [
        ("levinson", &x_lev),
        ("dense lu", &x_lu),
        ("schur", &x_schur),
        ("cg", &x_cg),
    ] {
        assert!(
            max_err(x, &x_chol) < 1e-7,
            "{label} vs cholesky: {:e}",
            max_err(x, &x_chol)
        );
    }
}

#[test]
fn scalar_schur_and_block_schur_same_factor() {
    for seed in 0..4 {
        let t = workloads::random_spd_scalar(40, 20 + seed);
        let r1 = scalar_schur_factor(&first_row(&t)).unwrap();
        let f = factor_spd(&t, &SchurOptions::default()).unwrap();
        assert!(r1.max_abs_diff(&f.r) < 1e-9, "seed {seed}");
    }
}

#[test]
fn breakdown_happens_exactly_on_non_spd_inputs() {
    // All SPD-only methods break on the indefinite matrix; LU and the
    // extended Schur still solve it.
    let t = workloads::random_indefinite_scalar(24, 5);
    let row = first_row(&t);
    let (b, x_true) = workloads::rhs_for_ones(&t);

    assert!(levinson_solve(&row, &b).is_err());
    assert!(scalar_schur_factor(&row).is_err());
    assert!(dense_cholesky_solve(&t, &b).is_err());
    assert!(factor_spd(&t, &SchurOptions::default()).is_err());

    let x_lu = dense_lu_solve(&t, &b).unwrap();
    let f = factor_indefinite(&t, &IndefOptions::default()).unwrap();
    let res = solve_refined(&t, &f, &b, &RefineOptions::default()).unwrap();
    assert!(max_err(&res.x, &x_lu) < 1e-8);
    assert!(max_err(&res.x, &x_true) < 1e-8);
}

#[test]
fn schur_asymptotically_cheaper_than_dense_cholesky() {
    // Flop instrumentation: O(m n²) vs O(n³/3).
    let n = 256;
    let t = workloads::random_spd_scalar(n, 2);
    block_schur::matrix::flops::reset();
    let _ = factor_spd(&t, &SchurOptions::default()).unwrap();
    let schur_flops = block_schur::matrix::flops::get();

    block_schur::matrix::flops::reset();
    let _ = block_schur::matrix::chol::cholesky(&t.to_dense()).unwrap();
    let chol_flops = block_schur::matrix::flops::get();

    assert!(
        schur_flops * 2 < chol_flops,
        "schur {schur_flops} vs cholesky {chol_flops}"
    );
}

#[test]
fn cg_iteration_count_tracks_conditioning() {
    let well = workloads::kms(64, 0.3);
    let ill = workloads::kms(64, 0.97);
    let (bw, _) = workloads::rhs_for_ones(&well);
    let (bi, _) = workloads::rhs_for_ones(&ill);
    let rw = cg(|v| well.matvec(v), &bw, 1e-10, 500);
    let ri = cg(|v| ill.matvec(v), &bi, 1e-10, 500);
    assert!(rw.converged && ri.converged);
    assert!(
        rw.iterations < ri.iterations,
        "well {} vs ill {}",
        rw.iterations,
        ri.iterations
    );
}

#[test]
fn spectrum_predicts_cg_behaviour() {
    // κ₂(KMS(ρ)) grows with ρ, and CG needs ~√κ iterations: the exact
    // spectrum from the symmetric eigensolver must order both.
    let mut conds = Vec::new();
    let mut iters = Vec::new();
    for rho in [0.3, 0.6, 0.9] {
        let t = workloads::kms(48, rho);
        let cond = block_schur::matrix::eig::spd_condition(&t.to_dense()).unwrap();
        let (b, _) = workloads::rhs_for_ones(&t);
        let res = cg(|v| t.matvec(v), &b, 1e-10, 1000);
        assert!(res.converged);
        conds.push(cond);
        iters.push(res.iterations);
    }
    assert!(conds[0] < conds[1] && conds[1] < conds[2], "{conds:?}");
    assert!(iters[0] <= iters[1] && iters[1] <= iters[2], "{iters:?}");
}

#[test]
fn eigen_inertia_matches_schur_signature() {
    for seed in [3u64, 9, 21] {
        let t = workloads::random_indefinite_scalar(18, seed);
        let ev = block_schur::matrix::eig::sym_eigenvalues(&t.to_dense()).unwrap();
        let neg_eig = ev.iter().filter(|&&v| v < 0.0).count();
        let f = factor_indefinite(&t, &IndefOptions::default()).unwrap();
        if f.perturbations.is_empty() {
            assert_eq!(f.negative_inertia(), neg_eig, "seed {seed}");
        }
    }
}
