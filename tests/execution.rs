//! Execution-layer contract tests: the persistent worker pool must be
//! an implementation detail of *speed*, never of *results*. Strip
//! boundaries depend only on the problem shape and the partition
//! policy — not on the thread count — so a pooled factorization is
//! bitwise identical to the sequential one at every thread count,
//! including absurd oversubscription.
//!
//! The tests share one mutex: pool-dispatch counters are process-wide,
//! so the inline-fallback assertions must not race the pooled runs.

use block_schur::prelude::*;
use bs_probe::metrics::{self, Counter};
use std::sync::Mutex;

static EXCLUSIVE: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    EXCLUSIVE.lock().unwrap_or_else(|e| e.into_inner())
}

/// An ExecPolicy that engages the strip dispatcher even at test sizes.
fn exec(threads: usize) -> ExecPolicy {
    ExecPolicy {
        threads,
        min_work: 1,
        partition: Partition::Auto,
    }
}

fn spd_opts(threads: usize) -> SchurOptions {
    SchurOptions {
        exec: exec(threads),
        ..Default::default()
    }
}

#[test]
fn spd_factorization_is_bitwise_identical_across_thread_counts() {
    let _g = lock();
    let max = block_schur::matrix::par::current_num_threads();
    let systems = [
        workloads::kms(48, 0.85),
        workloads::random_spd_block(3, 16, 11),
        workloads::spd_ar1_block(4, 16, 0.6, 5),
    ];
    for t in &systems {
        let (b, _) = workloads::rhs_for_ones(t);
        let baseline = factor_spd(t, &spd_opts(1)).unwrap();
        let x0 = baseline.solve(&b).unwrap();
        for threads in [2usize, max, max * 2] {
            let f = factor_spd(t, &spd_opts(threads)).unwrap();
            // Elementwise *equality*, not closeness: deterministic
            // strips mean no reassociation anywhere in the update.
            assert_eq!(
                f.r.max_abs_diff(&baseline.r),
                0.0,
                "threads={threads}: pooled R differs from sequential"
            );
            let x = f.solve(&b).unwrap();
            assert_eq!(x, x0, "threads={threads}: pooled solve differs");
        }
    }
}

#[test]
fn indefinite_solver_is_bitwise_identical_across_thread_counts() {
    let _g = lock();
    let max = block_schur::matrix::par::current_num_threads();
    let systems = [
        workloads::random_indefinite_block(2, 12, 21),
        workloads::singular_minor_scalar(40, 503),
    ];
    for t in &systems {
        let (b, _) = workloads::rhs_for_ones(t);
        let mk = |threads: usize| SolverOptions {
            spd: spd_opts(threads),
            ..Default::default()
        };
        let base = ToeplitzSolver::with_options(t, &mk(1)).unwrap();
        let x0 = base.solve(&b).unwrap();
        assert!(!base.is_positive_definite(), "workload must be indefinite");
        for threads in [2usize, max, max * 2] {
            let s = ToeplitzSolver::with_options(t, &mk(threads)).unwrap();
            let x = s.solve(&b).unwrap();
            assert_eq!(x, x0, "threads={threads}: indefinite solve differs");
        }
    }
}

#[test]
fn fixed_kernel_choice_is_bitwise_identical_across_thread_counts() {
    // The kernel-engine determinism contract: for any *fixed* microkernel
    // choice, every C entry's accumulation chain depends only on the
    // problem shape — never on strip boundaries — so a pooled run is
    // bitwise equal to the sequential one whichever ISA is dispatched.
    // (Different ISAs may differ in the last bits: FMA fuses what the
    // portable kernel rounds twice. That is why the choice is held
    // fixed inside the comparison, under the process-wide EXCLUSIVE
    // lock since the override is global.)
    use block_schur::matrix::kernel;
    let _g = lock();
    let max = block_schur::matrix::par::current_num_threads();
    let t = workloads::spd_ar1_block(4, 20, 0.65, 17);
    let (b, _) = workloads::rhs_for_ones(&t);
    for choice in [kernel::Choice::Portable, kernel::Choice::Native] {
        kernel::set_override(Some(choice));
        let baseline = factor_spd(&t, &spd_opts(1)).unwrap();
        let x0 = baseline.solve(&b).unwrap();
        for threads in [2usize, max, max * 2] {
            let f = factor_spd(&t, &spd_opts(threads)).unwrap();
            assert_eq!(
                f.r.max_abs_diff(&baseline.r),
                0.0,
                "{choice:?} threads={threads}: pooled R differs from sequential"
            );
            assert_eq!(
                f.solve(&b).unwrap(),
                x0,
                "{choice:?} threads={threads}: pooled solve differs"
            );
        }
    }
    kernel::set_override(None);
}

#[test]
fn threads_one_never_touches_the_pool() {
    let _g = lock();
    let t = workloads::random_spd_block(4, 12, 7);
    let before = metrics::total(Counter::PoolDispatches);
    let _ = factor_spd(&t, &spd_opts(1)).unwrap();
    assert_eq!(
        metrics::total(Counter::PoolDispatches),
        before,
        "threads=1 must run strips inline on the caller's thread"
    );
    // The same problem with threads=2 *does* route through the pool —
    // proving the counter would have caught an accidental dispatch.
    let _ = factor_spd(&t, &spd_opts(2)).unwrap();
    assert!(
        metrics::total(Counter::PoolDispatches) > before,
        "threads=2 at min_work=1 must dispatch to the pool"
    );
}

#[test]
fn batched_factor_matches_looped_execution_bitwise() {
    let _g = lock();
    let max = block_schur::matrix::par::current_num_threads();
    // Same shape (n = 16, m = 2), mixed SPD / indefinite content so the
    // batch exercises both execute paths.
    let systems: Vec<SymBlockToeplitz> = (0..5)
        .map(|s| workloads::random_spd_block(2, 8, 100 + s))
        .chain((0..2).map(|s| workloads::random_indefinite_block(2, 8, 200 + s)))
        .collect();
    for threads in [1usize, 2, max, max * 2] {
        let req = PlanRequest {
            threads: Some(threads),
            ..Default::default()
        };
        let plan = FactorPlan::new(&systems[0], &req).unwrap();
        let batch = plan.execute_batch(&systems).unwrap();
        assert_eq!(batch.len(), systems.len());
        for (i, (t, f)) in systems.iter().zip(&batch).enumerate() {
            let mut pw = PlanWorkspace::new();
            let single = plan.execute(t, &mut pw).unwrap();
            match (f, &single) {
                (Factorization::Spd(a), Factorization::Spd(b)) => {
                    assert_eq!(
                        a.r.max_abs_diff(&b.r),
                        0.0,
                        "threads={threads} system={i}: batched SPD factor differs"
                    );
                }
                (Factorization::Indefinite(a), Factorization::Indefinite(b)) => {
                    assert_eq!(
                        a.r.max_abs_diff(&b.r),
                        0.0,
                        "threads={threads} system={i}: batched indefinite factor differs"
                    );
                    assert_eq!(a.d, b.d, "threads={threads} system={i}: signature differs");
                }
                other => panic!("threads={threads} system={i}: path mismatch {other:?}"),
            }
        }
    }
    // Empty batch is a no-op, not an error.
    let plan = FactorPlan::new(&systems[0], &PlanRequest::default()).unwrap();
    assert!(plan.execute_batch(&[]).unwrap().is_empty());
    // A mis-shaped system is rejected up front.
    let wrong = workloads::random_spd_block(2, 12, 3);
    assert!(matches!(
        plan.execute_batch(std::slice::from_ref(&wrong)),
        Err(block_schur::core::Error::DimensionMismatch { .. })
    ));
}

#[test]
fn solve_batch_matches_solve_many_bitwise() {
    let _g = lock();
    let max = block_schur::matrix::par::current_num_threads();
    // SPD (direct path) and indefinite-with-perturbation (refined path)
    // systems; 9 right-hand sides so chunks are uneven at most counts.
    for t in [
        workloads::random_spd_block(3, 8, 5),
        workloads::singular_minor_scalar(40, 503),
    ] {
        let n = t.order();
        let b = Matrix::from_fn(n, 9, |i, j| ((i * 31 + j * 7) % 13) as f64 - 6.0);
        let mk = |threads: usize| SolverOptions {
            spd: spd_opts(threads),
            ..Default::default()
        };
        let reference = {
            let s = ToeplitzSolver::with_options(&t, &mk(1)).unwrap();
            s.solve_many(&b).unwrap()
        };
        for threads in [1usize, 2, max, max * 2] {
            let s = ToeplitzSolver::with_options(&t, &mk(threads)).unwrap();
            let looped = s.solve_many(&b).unwrap();
            let batched = s.solve_batch(&b).unwrap();
            assert_eq!(
                batched.max_abs_diff(&looped),
                0.0,
                "threads={threads} n={n}: solve_batch differs from solve_many"
            );
            assert_eq!(
                batched.max_abs_diff(&reference),
                0.0,
                "threads={threads} n={n}: solve_batch differs from sequential reference"
            );
        }
    }
    // Shape errors are typed, not panics.
    let t = workloads::random_spd_scalar(8, 1);
    let s = ToeplitzSolver::new(&t).unwrap();
    assert!(matches!(
        s.solve_batch(&Matrix::zeros(5, 2)),
        Err(block_schur::core::Error::DimensionMismatch {
            expected: 8,
            found: 5,
            ..
        })
    ));
    // Zero-column batch round-trips.
    assert_eq!(s.solve_batch(&Matrix::zeros(8, 0)).unwrap().cols(), 0);
}

#[test]
fn shared_factor_is_bitwise_deterministic_under_thread_hammering() {
    let _g = lock();
    // One immutable Factor behind an Arc, hammered by N threads whose
    // per-call scratch comes from the shared workspace pool: every
    // concurrent solve must be bitwise identical to the sequential
    // answer, and the pool must end balanced (all arenas returned, no
    // audit violations) — the Send + Sync contract of the split.
    const THREADS: usize = 8;
    const SOLVES: usize = 40;
    for t in [
        workloads::random_spd_block(3, 16, 77),
        workloads::singular_minor_scalar(40, 811),
    ] {
        let n = t.order();
        let factor = std::sync::Arc::new(Factor::new(&t).unwrap());
        let rhs: Vec<Vec<f64>> = (0..SOLVES)
            .map(|k| {
                (0..n)
                    .map(|i| ((i * 17 + k * 29) % 23) as f64 - 11.0)
                    .collect()
            })
            .collect();
        let rhs = std::sync::Arc::new(rhs);
        let reference: std::sync::Arc<Vec<Vec<f64>>> =
            std::sync::Arc::new(rhs.iter().map(|b| factor.solve(b).unwrap()).collect());

        let violations0 = metrics::total(Counter::AuditViolations);
        let barrier = std::sync::Arc::new(std::sync::Barrier::new(THREADS));
        let workers: Vec<_> = (0..THREADS)
            .map(|id| {
                let (factor, rhs, reference, barrier) = (
                    std::sync::Arc::clone(&factor),
                    std::sync::Arc::clone(&rhs),
                    std::sync::Arc::clone(&reference),
                    std::sync::Arc::clone(&barrier),
                );
                std::thread::spawn(move || {
                    barrier.wait();
                    // Each thread walks the solve stream from its own
                    // offset so checkouts interleave across threads.
                    for k in 0..SOLVES {
                        let idx = (id * 7 + k) % SOLVES;
                        let x = factor.solve(&rhs[idx]).unwrap();
                        assert_eq!(
                            x, reference[idx],
                            "thread {id} solve {idx}: concurrent result \
                             diverged from sequential"
                        );
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }

        let pool = factor.scratch_pool();
        assert_eq!(
            pool.outstanding(),
            0,
            "n={n}: every pooled workspace must be returned"
        );
        assert!(
            pool.audit_balanced("execution_test"),
            "n={n}: workspace pool audit failed"
        );
        assert_eq!(
            metrics::total(Counter::AuditViolations) - violations0,
            0,
            "n={n}: concurrent solves recorded audit violations"
        );
    }
}

#[test]
fn oversubscription_smoke() {
    let _g = lock();
    // Far more workers than cores: the pool grows on demand, the claim
    // loop load-balances, and the result is still bitwise sequential.
    let threads = block_schur::matrix::par::current_num_threads() * 8;
    let t = workloads::spd_ar1_block(4, 24, 0.7, 13);
    let (b, x_true) = workloads::rhs_for_ones(&t);
    let baseline = factor_spd(&t, &spd_opts(1)).unwrap();
    let f = factor_spd(&t, &spd_opts(threads)).unwrap();
    assert_eq!(f.r.max_abs_diff(&baseline.r), 0.0);
    let x = f.solve(&b).unwrap();
    let err = x
        .iter()
        .zip(&x_true)
        .map(|(a, c)| (a - c).abs())
        .fold(0.0, f64::max);
    assert!(err < 1e-8, "oversubscribed solve error {err:e}");
}
