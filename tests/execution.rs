//! Execution-layer contract tests: the persistent worker pool must be
//! an implementation detail of *speed*, never of *results*. Strip
//! boundaries depend only on the problem shape and the partition
//! policy — not on the thread count — so a pooled factorization is
//! bitwise identical to the sequential one at every thread count,
//! including absurd oversubscription.
//!
//! The tests share one mutex: pool-dispatch counters are process-wide,
//! so the inline-fallback assertions must not race the pooled runs.

use block_schur::prelude::*;
use bs_probe::metrics::{self, Counter};
use std::sync::Mutex;

static EXCLUSIVE: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    EXCLUSIVE.lock().unwrap_or_else(|e| e.into_inner())
}

/// An ExecPolicy that engages the strip dispatcher even at test sizes.
fn exec(threads: usize) -> ExecPolicy {
    ExecPolicy {
        threads,
        min_work: 1,
        partition: Partition::Auto,
    }
}

fn spd_opts(threads: usize) -> SchurOptions {
    SchurOptions {
        exec: exec(threads),
        ..Default::default()
    }
}

#[test]
fn spd_factorization_is_bitwise_identical_across_thread_counts() {
    let _g = lock();
    let max = block_schur::matrix::par::current_num_threads();
    let systems = [
        workloads::kms(48, 0.85),
        workloads::random_spd_block(3, 16, 11),
        workloads::spd_ar1_block(4, 16, 0.6, 5),
    ];
    for t in &systems {
        let (b, _) = workloads::rhs_for_ones(t);
        let baseline = factor_spd(t, &spd_opts(1)).unwrap();
        let x0 = baseline.solve(&b).unwrap();
        for threads in [2usize, max, max * 2] {
            let f = factor_spd(t, &spd_opts(threads)).unwrap();
            // Elementwise *equality*, not closeness: deterministic
            // strips mean no reassociation anywhere in the update.
            assert_eq!(
                f.r.max_abs_diff(&baseline.r),
                0.0,
                "threads={threads}: pooled R differs from sequential"
            );
            let x = f.solve(&b).unwrap();
            assert_eq!(x, x0, "threads={threads}: pooled solve differs");
        }
    }
}

#[test]
fn indefinite_solver_is_bitwise_identical_across_thread_counts() {
    let _g = lock();
    let max = block_schur::matrix::par::current_num_threads();
    let systems = [
        workloads::random_indefinite_block(2, 12, 21),
        workloads::singular_minor_scalar(40, 503),
    ];
    for t in &systems {
        let (b, _) = workloads::rhs_for_ones(t);
        let mk = |threads: usize| SolverOptions {
            spd: spd_opts(threads),
            ..Default::default()
        };
        let base = ToeplitzSolver::with_options(t, &mk(1)).unwrap();
        let x0 = base.solve(&b).unwrap();
        assert!(!base.is_positive_definite(), "workload must be indefinite");
        for threads in [2usize, max, max * 2] {
            let s = ToeplitzSolver::with_options(t, &mk(threads)).unwrap();
            let x = s.solve(&b).unwrap();
            assert_eq!(x, x0, "threads={threads}: indefinite solve differs");
        }
    }
}

#[test]
fn fixed_kernel_choice_is_bitwise_identical_across_thread_counts() {
    // The kernel-engine determinism contract: for any *fixed* microkernel
    // choice, every C entry's accumulation chain depends only on the
    // problem shape — never on strip boundaries — so a pooled run is
    // bitwise equal to the sequential one whichever ISA is dispatched.
    // (Different ISAs may differ in the last bits: FMA fuses what the
    // portable kernel rounds twice. That is why the choice is held
    // fixed inside the comparison, under the process-wide EXCLUSIVE
    // lock since the override is global.)
    use block_schur::matrix::kernel;
    let _g = lock();
    let max = block_schur::matrix::par::current_num_threads();
    let t = workloads::spd_ar1_block(4, 20, 0.65, 17);
    let (b, _) = workloads::rhs_for_ones(&t);
    for choice in [kernel::Choice::Portable, kernel::Choice::Native] {
        kernel::set_override(Some(choice));
        let baseline = factor_spd(&t, &spd_opts(1)).unwrap();
        let x0 = baseline.solve(&b).unwrap();
        for threads in [2usize, max, max * 2] {
            let f = factor_spd(&t, &spd_opts(threads)).unwrap();
            assert_eq!(
                f.r.max_abs_diff(&baseline.r),
                0.0,
                "{choice:?} threads={threads}: pooled R differs from sequential"
            );
            assert_eq!(
                f.solve(&b).unwrap(),
                x0,
                "{choice:?} threads={threads}: pooled solve differs"
            );
        }
    }
    kernel::set_override(None);
}

#[test]
fn threads_one_never_touches_the_pool() {
    let _g = lock();
    let t = workloads::random_spd_block(4, 12, 7);
    let before = metrics::total(Counter::PoolDispatches);
    let _ = factor_spd(&t, &spd_opts(1)).unwrap();
    assert_eq!(
        metrics::total(Counter::PoolDispatches),
        before,
        "threads=1 must run strips inline on the caller's thread"
    );
    // The same problem with threads=2 *does* route through the pool —
    // proving the counter would have caught an accidental dispatch.
    let _ = factor_spd(&t, &spd_opts(2)).unwrap();
    assert!(
        metrics::total(Counter::PoolDispatches) > before,
        "threads=2 at min_work=1 must dispatch to the pool"
    );
}

#[test]
fn oversubscription_smoke() {
    let _g = lock();
    // Far more workers than cores: the pool grows on demand, the claim
    // loop load-balances, and the result is still bitwise sequential.
    let threads = block_schur::matrix::par::current_num_threads() * 8;
    let t = workloads::spd_ar1_block(4, 24, 0.7, 13);
    let (b, x_true) = workloads::rhs_for_ones(&t);
    let baseline = factor_spd(&t, &spd_opts(1)).unwrap();
    let f = factor_spd(&t, &spd_opts(threads)).unwrap();
    assert_eq!(f.r.max_abs_diff(&baseline.r), 0.0);
    let x = f.solve(&b).unwrap();
    let err = x
        .iter()
        .zip(&x_true)
        .map(|(a, c)| (a - c).abs())
        .fold(0.0, f64::max);
    assert!(err < 1e-8, "oversubscribed solve error {err:e}");
}
