//! End-to-end checks of the bs-probe observability layer: stability
//! monitoring through iterative refinement, the span structure of a
//! full `ToeplitzSolver::solve`, and JSON-lines export validity.
//!
//! Trace/stability state is process-global, so each test arms and
//! disarms the probes around its own instrumented region; the suite
//! relies on the harness running `#[test]`s in this file on the shared
//! thread pool (spans from other threads carry their own thread ids).

use block_schur::prelude::*;
use std::sync::Mutex;

/// Probe state is process-global; serialize the tests that arm it.
static PROBE_LOCK: Mutex<()> = Mutex::new(());

fn probe_guard() -> std::sync::MutexGuard<'static, ()> {
    PROBE_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// §8 worked example: refinement drives the residual monotonically
/// down, and the stability monitor records the same history.
#[test]
fn residual_history_is_monotone_on_paper_example() {
    let _g = probe_guard();
    let t = workloads::paper_singular_minor_example();
    let f = factor_indefinite(&t, &IndefOptions::default()).unwrap();
    let (b, _) = workloads::rhs_for_ones(&t);

    bs_probe::stability::enable(0.0);
    let res = solve_refined(&t, &f, &b, &RefineOptions::default()).unwrap();
    bs_probe::stability::disable();
    let report = bs_probe::stability::take_report();

    assert!(
        res.residual_norms.len() >= 2,
        "refinement recorded {} residuals",
        res.residual_norms.len()
    );
    // Monotone non-increasing down to the rounding floor, where the
    // final iterations may jitter by a few ulps of ‖b‖.
    let floor = 64.0 * f64::EPSILON * block_schur::matrix::norms::vec_two(&b);
    for w in res.residual_norms.windows(2) {
        assert!(
            w[1] <= w[0] || w[1] < floor,
            "residual history not monotone non-increasing: {:?}",
            res.residual_norms
        );
    }
    // The monitor saw the same history the solver returned.
    assert_eq!(report.residual_norms, res.residual_norms);
}

/// A full `ToeplitzSolver` run enters its phases in order:
/// factor, then solve, with refine nested inside solve.
#[test]
fn solver_trace_has_factor_solve_refine_sequence() {
    let _g = probe_guard();
    let t = workloads::paper_singular_minor_example();
    let (b, _) = workloads::rhs_for_ones(&t);

    bs_probe::trace::clear();
    bs_probe::trace::enable();
    let solver = ToeplitzSolver::new(&t).unwrap();
    let x = solver.solve(&b).unwrap();
    bs_probe::trace::disable();
    let events = bs_probe::trace::take_events();

    assert!(x.iter().all(|v| v.is_finite()));
    let enters: Vec<&str> = events
        .iter()
        .filter(|e| matches!(e.kind, bs_probe::EventKind::Enter))
        .map(|e| e.name)
        .collect();
    let pos = |name: &str| {
        enters
            .iter()
            .position(|&n| n == name)
            .unwrap_or_else(|| panic!("span {name:?} missing from trace: {enters:?}"))
    };
    let (factor, solve, refine) = (pos("factor"), pos("solve"), pos("refine"));
    assert!(
        factor < solve && solve < refine,
        "span order factor={factor} solve={solve} refine={refine}: {enters:?}"
    );
}

/// The exported trace is valid JSON-lines carrying per-step flop deltas
/// and growth factors, ending in a metrics line.
#[test]
fn exported_trace_is_valid_jsonl() {
    let _g = probe_guard();
    let t = workloads::random_spd_block(4, 16, 5); // n = 64
    let (b, _) = workloads::rhs_for_ones(&t);

    bs_probe::reset_all();
    bs_probe::enable_all(1e8);
    let solver = ToeplitzSolver::new(&t).unwrap();
    solver.solve(&b).unwrap();
    bs_probe::disable_all();

    let path = std::env::temp_dir().join(format!("bs-obs-{}.jsonl", std::process::id()));
    bs_probe::export::write_trace_jsonl(&path).unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_file(&path).ok();

    let mut kinds = std::collections::BTreeSet::new();
    let mut saw_step_flops = false;
    let mut saw_growth = false;
    for line in text.lines() {
        let v = bs_probe::Json::parse(line)
            .unwrap_or_else(|e| panic!("invalid JSONL line ({e:?}): {line}"));
        let ty = v.get("type").and_then(|t| t.as_str()).expect("type tag");
        kinds.insert(ty.to_string());
        match ty {
            "span" if v.get("name").and_then(|n| n.as_str()) == Some("schur_step_done") => {
                let fields = v.get("fields").unwrap();
                saw_step_flops |= fields.get("flops").and_then(|f| f.as_f64()).unwrap_or(0.0) > 0.0;
            }
            "step" => {
                saw_growth |= v.get("growth").and_then(|g| g.as_f64()).unwrap_or(0.0) > 0.0;
            }
            _ => {}
        }
    }
    assert!(kinds.contains("span"), "kinds: {kinds:?}");
    assert!(kinds.contains("step"), "kinds: {kinds:?}");
    assert!(kinds.contains("metrics"), "kinds: {kinds:?}");
    assert!(saw_step_flops, "no positive per-step flop delta:\n{text}");
    assert!(saw_growth, "no positive growth factor:\n{text}");
    // The metrics line is last and carries the flop total.
    let last = bs_probe::Json::parse(text.lines().last().unwrap()).unwrap();
    assert_eq!(last.get("type").unwrap().as_str(), Some("metrics"));
    assert!(last.get("flops_total").unwrap().as_f64().unwrap() > 0.0);
}

/// Acceptance: the aggregated profile of an instrumented solve accounts
/// for the wall clock of the traced region to within 5%, and both the
/// folded-stack and Perfetto trace-event exports are well-formed.
#[test]
fn profile_roots_cover_wall_and_exports_are_valid() {
    let _g = probe_guard();
    let t = workloads::random_spd_block(8, 48, 11); // n = 384
    let (b, _) = workloads::rhs_for_ones(&t);

    bs_probe::trace::clear();
    bs_probe::trace::enable();
    let wall = std::time::Instant::now();
    let solver = ToeplitzSolver::new(&t).unwrap();
    let x = solver.solve(&b).unwrap();
    let wall_ns = wall.elapsed().as_nanos() as u64;
    bs_probe::trace::disable();
    let events = bs_probe::trace::take_events();
    assert!(x.iter().all(|v| v.is_finite()));

    let prof = bs_probe::Profile::from_events(&events);
    assert!(!prof.truncated(), "trace ring saturated during test solve");
    let roots = prof.root_total_ns();
    assert!(
        roots <= wall_ns,
        "root spans ({roots} ns) exceed the wall clock ({wall_ns} ns)"
    );
    assert!(
        roots as f64 >= 0.95 * wall_ns as f64,
        "root spans cover only {:.1}% of wall ({roots} of {wall_ns} ns)",
        100.0 * roots as f64 / wall_ns as f64,
    );

    // Folded-stack export: `root;child;... <self_ns>` lines.
    let folded = prof.folded();
    assert!(!folded.is_empty(), "folded export is empty");
    for line in folded.lines() {
        let (stack, ns) = line.rsplit_once(' ').expect("stack + self_ns");
        assert!(!stack.is_empty(), "empty stack in {line:?}");
        ns.parse::<u64>()
            .unwrap_or_else(|_| panic!("bad self_ns in {line:?}"));
    }
    assert!(folded.lines().any(|l| l.starts_with("factor")));
    assert!(folded.lines().any(|l| l.starts_with("solve")));

    // Perfetto export round-trips through the JSON parser with paired
    // B/E duration events.
    let perfetto = bs_probe::export::perfetto_json(&events);
    let v = bs_probe::Json::parse(&perfetto.to_string()).expect("perfetto JSON parses");
    let trace_events = v
        .get("traceEvents")
        .and_then(|e| e.as_array())
        .expect("traceEvents array");
    assert!(!trace_events.is_empty());
    let count_ph = |ph: &str| {
        trace_events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some(ph))
            .count()
    };
    assert_eq!(count_ph("B"), count_ph("E"), "unpaired B/E duration events");
    assert!(count_ph("B") > 0, "no duration events exported");
}

/// Acceptance: with histograms armed, a batch of solves yields non-empty
/// solve/factor-step latency distributions with ordered quantiles.
#[test]
fn solve_latency_histogram_has_quantiles() {
    let _g = probe_guard();
    let t = workloads::random_spd_block(4, 16, 5); // n = 64
    let (b, _) = workloads::rhs_for_ones(&t);

    bs_probe::reset_all();
    bs_probe::histogram::enable();
    let solver = ToeplitzSolver::new(&t).unwrap();
    for _ in 0..8 {
        solver.solve(&b).unwrap();
    }
    bs_probe::histogram::disable();

    let solve = bs_probe::histogram::merged(bs_probe::Hist::SolveNs);
    assert_eq!(solve.count(), 8, "one sample per solve");
    let (p50, p99) = (solve.p50(), solve.p99());
    assert!(p50 > 0, "zero p50 solve latency");
    assert!(p50 <= p99, "p50 {p50} > p99 {p99}");
    assert!(solve.min() <= p50 && p99 <= solve.max() * 2);

    let steps = bs_probe::histogram::merged(bs_probe::Hist::FactorStepNs);
    assert!(
        steps.count() > 0,
        "factoring recorded no per-step latencies"
    );
    bs_probe::histogram::reset_all();
}
