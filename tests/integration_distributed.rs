//! Distributed execution (§7) integration tests: the message-passing
//! implementation must produce the sequential factor under every
//! distribution scheme, and its virtual clocks must agree with the
//! analytic simulator.

use block_schur::distmem::{WallOpts, World, ZeroCost};
use block_schur::perfmodel::Rep;
use block_schur::prelude::*;
use block_schur::simulator::analytic::{simulate, SimConfig};
use block_schur::simulator::dist_exec::factor_distributed;
use block_schur::simulator::{factor_sharded, Scheme, ShardOptions, T3DModel};
use std::sync::Arc;
use std::time::Duration;

#[test]
fn v1_v2_match_sequential_across_sizes() {
    for (m, p) in [(1usize, 24usize), (2, 12), (4, 8)] {
        let t = workloads::random_spd_block(m, p, (m * 31 + p) as u64);
        let seq = factor_spd(&t, &SchurOptions::default()).unwrap();
        for np in [1usize, 2, 3, 5] {
            for scheme in [Scheme::V1, Scheme::V2 { b: 2 }, Scheme::V2 { b: 4 }] {
                let d = factor_distributed(&t, np, scheme, RepKind::VY2, Arc::new(ZeroCost));
                assert!(
                    d.r.max_abs_diff(&seq.r) < 1e-9,
                    "m={m} p={p} np={np} {}: {:e}",
                    scheme.label(),
                    d.r.max_abs_diff(&seq.r)
                );
            }
        }
    }
}

#[test]
fn distributed_solve_end_to_end() {
    let t = workloads::random_spd_block(2, 16, 8);
    let (b, x_true) = workloads::rhs_for_ones(&t);
    let d = factor_distributed(&t, 4, Scheme::V2 { b: 2 }, RepKind::YTY, Arc::new(ZeroCost));
    let x = block_schur::core::solve::solve_rtdr(&d.r, None, &b).unwrap();
    for i in 0..x.len() {
        assert!((x[i] - x_true[i]).abs() < 1e-8, "i={i}");
    }
}

#[test]
fn virtual_times_match_analytic_across_schemes() {
    let model = T3DModel::default();
    for (m, p, np, scheme) in [
        (2usize, 16usize, 4usize, Scheme::V1),
        (2, 16, 4, Scheme::V2 { b: 2 }),
        (4, 12, 3, Scheme::V1),
    ] {
        let t = workloads::random_spd_block(m, p, 55);
        let d = factor_distributed(&t, np, scheme, RepKind::VY2, Arc::new(model.clone()));
        let sim = simulate(
            &SimConfig {
                n: m * p,
                m,
                np,
                scheme,
                rep: Rep::VY2,
            },
            &model,
        );
        let rel = (d.max_time - sim.total).abs() / sim.total;
        assert!(
            rel < 0.05,
            "{} np={np}: exec {} vs sim {} (rel {rel})",
            scheme.label(),
            d.max_time,
            sim.total
        );
    }
}

#[test]
fn more_ranks_do_not_change_the_result_but_cut_time() {
    let t = workloads::random_spd_block(4, 16, 3);
    let model = T3DModel::default();
    let d1 = factor_distributed(&t, 1, Scheme::V1, RepKind::VY2, Arc::new(model.clone()));
    let d4 = factor_distributed(&t, 4, Scheme::V1, RepKind::VY2, Arc::new(model.clone()));
    assert!(d1.r.max_abs_diff(&d4.r) < 1e-9);
    assert!(
        d4.max_time < d1.max_time,
        "4 ranks ({}) should beat 1 rank ({})",
        d4.max_time,
        d1.max_time
    );
}

#[test]
fn comm_volume_tracks_representation_size() {
    // YTYᵀ broadcasts fewer bytes than VY (the §6.5 argument).
    let t = workloads::random_spd_block(8, 8, 4);
    let model = T3DModel::default();
    let d_vy = factor_distributed(&t, 4, Scheme::V1, RepKind::VY2, Arc::new(model.clone()));
    let d_yty = factor_distributed(&t, 4, Scheme::V1, RepKind::YTY, Arc::new(model));
    let vy_bytes: usize = d_vy.bytes_sent.iter().sum();
    let yty_bytes: usize = d_yty.bytes_sent.iter().sum();
    assert!(
        yty_bytes < vy_bytes,
        "yty {yty_bytes} must be below vy {vy_bytes}"
    );
}

#[test]
fn analytic_simulator_is_deterministic() {
    let model = T3DModel::default();
    let cfg = SimConfig {
        n: 1024,
        m: 4,
        np: 16,
        scheme: Scheme::V2 { b: 4 },
        rep: Rep::VY2,
    };
    let a = simulate(&cfg, &model);
    let b = simulate(&cfg, &model);
    assert_eq!(a.total, b.total);
    assert_eq!(a.bytes, b.bytes);
}

#[test]
fn experiment_regimes_reproduce_paper_winners() {
    // Compressed versions of Figs. 6-8 as assertions.
    let model = T3DModel::default();
    let run = |n: usize, m: usize, np: usize, scheme: Scheme| {
        simulate(
            &SimConfig {
                n,
                m,
                np,
                scheme,
                rep: Rep::VY2,
            },
            &model,
        )
        .total
    };
    // Fig. 6 regime: moderate grouping beats both extremes.
    let t_b1 = run(2048, 1, 16, Scheme::V1);
    let t_b8 = run(2048, 1, 16, Scheme::V2 { b: 8 });
    let t_b128 = run(2048, 1, 16, Scheme::V2 { b: 128 });
    assert!(t_b8 < t_b1 && t_b8 < t_b128, "{t_b1} {t_b8} {t_b128}");
    // Fig. 7 regime: V1 beats large grouping and wide spreading.
    let t_v1 = run(2048, 8, 32, Scheme::V1);
    let t_v2 = run(2048, 8, 32, Scheme::V2 { b: 8 });
    let t_v3 = run(2048, 8, 32, Scheme::V3 { spread: 4 });
    assert!(t_v1 < t_v2 && t_v1 < t_v3, "{t_v1} {t_v2} {t_v3}");
    // Fig. 8 regime: moderate spreading beats V1.
    let t8_v1 = run(2048, 32, 32, Scheme::V1);
    let t8_v3 = run(2048, 32, 32, Scheme::V3 { spread: 4 });
    assert!(t8_v3 < t8_v1, "{t8_v3} vs {t8_v1}");
}

// ---------------------------------------------------------------------
// Measured sharded backend (wall transport): correctness, determinism,
// and failure paths.
// ---------------------------------------------------------------------

/// Valid schemes for the sharded sweep at one `(m, np)`.
fn shard_schemes(m: usize, np: usize) -> Vec<Scheme> {
    let mut out = vec![Scheme::V1, Scheme::V2 { b: 2 }];
    if np > 1 && np.is_multiple_of(2) && m.is_multiple_of(2) {
        out.push(Scheme::V3 { spread: 2 });
    }
    out
}

#[test]
fn sharded_matches_sequential_across_schemes_and_np() {
    for (m, p) in [(2usize, 12usize), (4, 8)] {
        let t = workloads::random_spd_block(m, p, (m * 17 + p) as u64);
        let seq = factor_spd(&t, &SchurOptions::default()).unwrap();
        let tol = 1e-8 * t.norm_inf().max(1.0);
        for np in [1usize, 2, 4] {
            for scheme in shard_schemes(m, np) {
                let run = factor_sharded(&t, &ShardOptions::new(scheme, np));
                let diff = run.r.max_abs_diff(&seq.r);
                assert!(
                    diff < tol,
                    "m={m} p={p} np={np} {}: measured shard run deviates {diff:e}",
                    scheme.label()
                );
                assert!(run.wall_s > 0.0, "wall time must be a real measurement");
                if np > 1 {
                    assert!(
                        run.comm_volume() > 0,
                        "multi-rank runs must move real bytes"
                    );
                }
            }
        }
    }
}

#[test]
fn sharded_factor_is_bitwise_reproducible() {
    // Fixed (matrix, scheme, np, rep, kernel): thread scheduling may
    // reorder arrivals but never contents, so two runs must agree to
    // the last bit.
    let t = workloads::random_spd_block(4, 12, 21);
    for scheme in [Scheme::V1, Scheme::V2 { b: 2 }, Scheme::V3 { spread: 2 }] {
        let opts = ShardOptions::new(scheme, 2);
        let a = factor_sharded(&t, &opts);
        let b = factor_sharded(&t, &opts);
        let bits = |m: &Matrix| {
            m.as_slice()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<u64>>()
        };
        assert_eq!(
            bits(&a.r),
            bits(&b.r),
            "{} not reproducible",
            scheme.label()
        );
    }
}

#[test]
fn sharded_solve_end_to_end() {
    let t = workloads::random_spd_block(2, 16, 8);
    let (b, x_true) = workloads::rhs_for_ones(&t);
    let run = factor_sharded(&t, &ShardOptions::new(Scheme::V2 { b: 2 }, 4));
    let x = block_schur::core::solve::solve_rtdr(&run.r, None, &b).unwrap();
    for i in 0..x.len() {
        assert!((x[i] - x_true[i]).abs() < 1e-8, "i={i}");
    }
}

#[test]
fn rank_panic_mid_elimination_poisons_the_group() {
    // A rank dying between the panel broadcast and the step barrier
    // must fail the whole group (peers are blocked in barriers and
    // selective receives), not deadlock it.
    let result = std::panic::catch_unwind(|| {
        World::run_wall(4, WallOpts::default(), |p| {
            // Step 0 completes everywhere.
            let x = p.broadcast(0, 0, if p.rank() == 0 { &[2.0][..] } else { &[] });
            p.barrier();
            // Step 1: rank 2 dies; the others head into the barrier /
            // a receive that will never be satisfied.
            if p.rank() == 2 {
                panic!("injected mid-elimination failure");
            }
            if p.rank() == 3 {
                let _ = p.recv(2, 1); // rank 2 will never send this
            }
            p.barrier();
            x[0]
        })
    });
    assert!(result.is_err(), "group must report the poisoned barrier");
}

#[test]
fn recv_timeout_diagnostic_names_the_stuck_edge() {
    // Message-schedule bugs surface as a diagnostic naming the exact
    // (rank, source, tag) edge instead of an eternal hang.
    let result = std::panic::catch_unwind(|| {
        World::run_wall(
            3,
            WallOpts {
                recv_deadline: Some(Duration::from_millis(150)),
            },
            |p| {
                if p.rank() == 2 {
                    p.recv(1, 99); // never sent
                } else {
                    std::thread::sleep(Duration::from_millis(500));
                }
            },
        )
    });
    let err = result.expect_err("deadline must fire");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    for needle in ["rank 2", "from rank 1", "tag 99"] {
        assert!(msg.contains(needle), "diagnostic lacks {needle:?}: {msg}");
    }
}

#[test]
fn broadcast_payloads_are_bit_identical_across_ranks() {
    // The panel broadcast underpins the determinism contract: every
    // rank must see byte-identical reflector data, including exotic
    // values (signed zero, subnormals, NaN payloads).
    let payload = [
        f64::from_bits(0x8000_0000_0000_0000), // -0.0
        f64::from_bits(0x0000_0000_0000_0001), // min subnormal
        f64::from_bits(0x7ff8_0123_4567_89ab), // payload-carrying NaN
        f64::NEG_INFINITY,
        3.5e-310,
    ];
    let out = World::run_wall(4, WallOpts::default(), |p| {
        let got = p.broadcast(1, 5, if p.rank() == 1 { &payload[..] } else { &[] });
        got.iter().map(|v| v.to_bits()).collect::<Vec<u64>>()
    });
    let want: Vec<u64> = payload.iter().map(|v| v.to_bits()).collect();
    for (rank, got) in out.iter().enumerate() {
        assert_eq!(got, &want, "rank {rank} saw different broadcast bits");
    }
}
