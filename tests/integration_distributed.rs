//! Distributed execution (§7) integration tests: the message-passing
//! implementation must produce the sequential factor under every
//! distribution scheme, and its virtual clocks must agree with the
//! analytic simulator.

use block_schur::distmem::ZeroCost;
use block_schur::perfmodel::Rep;
use block_schur::prelude::*;
use block_schur::simulator::analytic::{simulate, SimConfig};
use block_schur::simulator::dist_exec::factor_distributed;
use block_schur::simulator::{Scheme, T3DModel};
use std::sync::Arc;

#[test]
fn v1_v2_match_sequential_across_sizes() {
    for (m, p) in [(1usize, 24usize), (2, 12), (4, 8)] {
        let t = workloads::random_spd_block(m, p, (m * 31 + p) as u64);
        let seq = factor_spd(&t, &SchurOptions::default()).unwrap();
        for np in [1usize, 2, 3, 5] {
            for scheme in [Scheme::V1, Scheme::V2 { b: 2 }, Scheme::V2 { b: 4 }] {
                let d = factor_distributed(&t, np, scheme, RepKind::VY2, Arc::new(ZeroCost));
                assert!(
                    d.r.max_abs_diff(&seq.r) < 1e-9,
                    "m={m} p={p} np={np} {}: {:e}",
                    scheme.label(),
                    d.r.max_abs_diff(&seq.r)
                );
            }
        }
    }
}

#[test]
fn distributed_solve_end_to_end() {
    let t = workloads::random_spd_block(2, 16, 8);
    let (b, x_true) = workloads::rhs_for_ones(&t);
    let d = factor_distributed(&t, 4, Scheme::V2 { b: 2 }, RepKind::YTY, Arc::new(ZeroCost));
    let x = block_schur::core::solve::solve_rtdr(&d.r, None, &b).unwrap();
    for i in 0..x.len() {
        assert!((x[i] - x_true[i]).abs() < 1e-8, "i={i}");
    }
}

#[test]
fn virtual_times_match_analytic_across_schemes() {
    let model = T3DModel::default();
    for (m, p, np, scheme) in [
        (2usize, 16usize, 4usize, Scheme::V1),
        (2, 16, 4, Scheme::V2 { b: 2 }),
        (4, 12, 3, Scheme::V1),
    ] {
        let t = workloads::random_spd_block(m, p, 55);
        let d = factor_distributed(&t, np, scheme, RepKind::VY2, Arc::new(model.clone()));
        let sim = simulate(
            &SimConfig {
                n: m * p,
                m,
                np,
                scheme,
                rep: Rep::VY2,
            },
            &model,
        );
        let rel = (d.max_time - sim.total).abs() / sim.total;
        assert!(
            rel < 0.05,
            "{} np={np}: exec {} vs sim {} (rel {rel})",
            scheme.label(),
            d.max_time,
            sim.total
        );
    }
}

#[test]
fn more_ranks_do_not_change_the_result_but_cut_time() {
    let t = workloads::random_spd_block(4, 16, 3);
    let model = T3DModel::default();
    let d1 = factor_distributed(&t, 1, Scheme::V1, RepKind::VY2, Arc::new(model.clone()));
    let d4 = factor_distributed(&t, 4, Scheme::V1, RepKind::VY2, Arc::new(model.clone()));
    assert!(d1.r.max_abs_diff(&d4.r) < 1e-9);
    assert!(
        d4.max_time < d1.max_time,
        "4 ranks ({}) should beat 1 rank ({})",
        d4.max_time,
        d1.max_time
    );
}

#[test]
fn comm_volume_tracks_representation_size() {
    // YTYᵀ broadcasts fewer bytes than VY (the §6.5 argument).
    let t = workloads::random_spd_block(8, 8, 4);
    let model = T3DModel::default();
    let d_vy = factor_distributed(&t, 4, Scheme::V1, RepKind::VY2, Arc::new(model.clone()));
    let d_yty = factor_distributed(&t, 4, Scheme::V1, RepKind::YTY, Arc::new(model));
    let vy_bytes: usize = d_vy.bytes_sent.iter().sum();
    let yty_bytes: usize = d_yty.bytes_sent.iter().sum();
    assert!(
        yty_bytes < vy_bytes,
        "yty {yty_bytes} must be below vy {vy_bytes}"
    );
}

#[test]
fn analytic_simulator_is_deterministic() {
    let model = T3DModel::default();
    let cfg = SimConfig {
        n: 1024,
        m: 4,
        np: 16,
        scheme: Scheme::V2 { b: 4 },
        rep: Rep::VY2,
    };
    let a = simulate(&cfg, &model);
    let b = simulate(&cfg, &model);
    assert_eq!(a.total, b.total);
    assert_eq!(a.bytes, b.bytes);
}

#[test]
fn experiment_regimes_reproduce_paper_winners() {
    // Compressed versions of Figs. 6-8 as assertions.
    let model = T3DModel::default();
    let run = |n: usize, m: usize, np: usize, scheme: Scheme| {
        simulate(
            &SimConfig {
                n,
                m,
                np,
                scheme,
                rep: Rep::VY2,
            },
            &model,
        )
        .total
    };
    // Fig. 6 regime: moderate grouping beats both extremes.
    let t_b1 = run(2048, 1, 16, Scheme::V1);
    let t_b8 = run(2048, 1, 16, Scheme::V2 { b: 8 });
    let t_b128 = run(2048, 1, 16, Scheme::V2 { b: 128 });
    assert!(t_b8 < t_b1 && t_b8 < t_b128, "{t_b1} {t_b8} {t_b128}");
    // Fig. 7 regime: V1 beats large grouping and wide spreading.
    let t_v1 = run(2048, 8, 32, Scheme::V1);
    let t_v2 = run(2048, 8, 32, Scheme::V2 { b: 8 });
    let t_v3 = run(2048, 8, 32, Scheme::V3 { spread: 4 });
    assert!(t_v1 < t_v2 && t_v1 < t_v3, "{t_v1} {t_v2} {t_v3}");
    // Fig. 8 regime: moderate spreading beats V1.
    let t8_v1 = run(2048, 32, 32, Scheme::V1);
    let t8_v3 = run(2048, 32, 32, Scheme::V3 { spread: 4 });
    assert!(t8_v3 < t8_v1, "{t8_v3} vs {t8_v1}");
}
