//! Refinement-convergence tier: the mixed-precision contract of §8.1.
//!
//! A [`Precision::Mixed`] plan factors at f32 and treats the promoted
//! factor as the perturbed factorization `Rᵀ D R` of `T + δT`, where
//! `δT` is the f32 rounding backward error. The §8.1 iteration then
//! runs against the *f64* operator, so as long as the contraction
//! factor `γ ≈ ‖δT·T⁻¹‖` stays below one, the refined answer lands at
//! working accuracy — the sweep below walks the conditioning up until
//! that assumption breaks and checks the stall fallback takes over.
//!
//! Contracts pinned here:
//! - residuals of mixed solves stay within 10× of the pure-f64 solve
//!   across a conditioning sweep (well-conditioned → near-singular,
//!   SPD and indefinite);
//! - on the ill-conditioned tail the refinement stalls, the solver
//!   falls back to a full f64 refactorization (observable via
//!   `Counter::MixedStallFallbacks`), and the answer *recovers*;
//! - refinement iteration counts surface in `Counter::RefineIterations`;
//! - `BS_PRECISION` forces plan requests onto the selected precision
//!   (the check.sh precision-tier hook).

use block_schur::prelude::*;
use bs_probe::metrics::{self, Counter};

/// ‖T x − b‖∞ — the convergence measure of eq. 41.
fn residual_inf(t: &SymBlockToeplitz, x: &[f64], b: &[f64]) -> f64 {
    t.matvec(x)
        .iter()
        .zip(b)
        .map(|(a, c)| (a - c).abs())
        .fold(0.0, f64::max)
}

/// check.sh's precision tier reruns this file under `BS_PRECISION=f32`,
/// which overrides *every* plan request; tests that pin mixed- or
/// f64-specific semantics skip themselves there (the override itself is
/// pinned by [`bs_precision_env_overrides_plan_requests`]).
fn precision_forced() -> bool {
    std::env::var_os("BS_PRECISION").is_some()
}

fn solver_with(t: &SymBlockToeplitz, precision: Precision) -> ToeplitzSolver {
    let req = PlanRequest {
        precision,
        ..Default::default()
    };
    ToeplitzSolver::with_plan_request(t, &req).unwrap()
}

/// The conditioning sweep: Kac–Murdock–Szegő matrices harden as
/// `ρ → 1` (κ ≈ ((1+ρ)/(1−ρ))²), plus SPD block and indefinite /
/// singular-minor systems so both factorization paths are covered.
fn sweep() -> Vec<SymBlockToeplitz> {
    vec![
        workloads::kms(48, 0.3),
        workloads::kms(48, 0.9),
        workloads::kms(48, 0.99),
        workloads::random_spd_block(2, 16, 7),
        workloads::spd_ar1_block(4, 12, 0.6, 5),
        workloads::random_indefinite_scalar(32, 3),
        workloads::random_indefinite_block(2, 12, 21),
        workloads::paper_singular_minor_example(),
        workloads::singular_minor_scalar(40, 503),
    ]
}

#[test]
fn mixed_residuals_within_10x_of_pure_f64_across_conditioning_sweep() {
    if precision_forced() {
        return;
    }
    for t in sweep() {
        let (b, _) = workloads::rhs_for_ones(&t);
        let s64 = solver_with(&t, Precision::F64);
        let smx = solver_with(&t, Precision::Mixed);
        assert_eq!(smx.plan().precision(), Precision::Mixed);
        let x64 = s64.solve(&b).unwrap();
        let xmx = smx.solve(&b).unwrap();
        let r64 = residual_inf(&t, &x64, &b);
        let rmx = residual_inf(&t, &xmx, &b);
        // 10× the pure-f64 residual, floored at the backward-stable
        // scale 64ε(‖b‖) so an exactly-zero f64 residual doesn't turn
        // the bound degenerate.
        let bnorm = b.iter().fold(0.0f64, |a, &v| a.max(v.abs()));
        let bound = (10.0 * r64).max(64.0 * f64::EPSILON * bnorm.max(1.0));
        assert!(
            rmx <= bound,
            "n={} spd={}: mixed residual {rmx:e} exceeds 10x f64 residual {r64:e}",
            t.order(),
            s64.is_positive_definite(),
        );
    }
}

#[test]
fn f32_factor_alone_is_single_precision_accurate() {
    if precision_forced() {
        return;
    }
    // Pure F32 plans trade accuracy for throughput: no refinement on
    // the unperturbed path, so the answer carries the f32 factor's
    // error — far above f64 roundoff, far below nonsense. This pins
    // the plateau the Mixed mode's refinement climbs down from.
    let t = workloads::kms(48, 0.6);
    let (b, x_true) = workloads::rhs_for_ones(&t);
    let s32 = solver_with(&t, Precision::F32);
    assert_eq!(s32.plan().precision(), Precision::F32);
    let x = s32.solve(&b).unwrap();
    let err = x
        .iter()
        .zip(&x_true)
        .map(|(a, c)| (a - c).abs())
        .fold(0.0f64, f64::max);
    assert!(err < 1e-2, "f32 factor error unreasonably large: {err:e}");
    assert!(
        err > 1e-13,
        "f32 factor error {err:e} at f64 roundoff — demotion did not happen"
    );
    // The mixed solve on the same system refines back to f64 accuracy.
    let smx = solver_with(&t, Precision::Mixed);
    let xmx = smx.solve(&b).unwrap();
    let errmx = xmx
        .iter()
        .zip(&x_true)
        .map(|(a, c)| (a - c).abs())
        .fold(0.0f64, f64::max);
    assert!(errmx < 1e-8, "mixed solve error {errmx:e}");
}

#[test]
fn stall_fallback_triggers_and_recovers_on_ill_conditioned_tail() {
    if precision_forced() {
        return;
    }
    // κ(KMS(ρ=0.999999)) ≈ 4·10¹²: the f32 backward error δT has
    // ‖δT·T⁻¹‖ ≈ ε₃₂·κ ≫ 1, so the §8.1 iteration cannot contract on
    // the promoted factor. The solver must detect the stall (or the
    // f32 factor stage must fail outright), fall back to a full f64
    // factorization, and still return an accurate answer.
    let t = workloads::kms(64, 0.999999);
    let (b, _) = workloads::rhs_for_ones(&t);
    let before = metrics::total(Counter::MixedStallFallbacks);
    let smx = solver_with(&t, Precision::Mixed);
    let xmx = smx.solve(&b).unwrap();
    assert!(
        metrics::total(Counter::MixedStallFallbacks) > before,
        "ill-conditioned mixed solve must route through the stall fallback"
    );
    // Recovery: the fallback answer matches the pure-f64 solver's
    // residual scale (same 10x contract as the sweep).
    let s64 = solver_with(&t, Precision::F64);
    let x64 = s64.solve(&b).unwrap();
    let r64 = residual_inf(&t, &x64, &b);
    let rmx = residual_inf(&t, &xmx, &b);
    let bnorm = b.iter().fold(0.0f64, |a, &v| a.max(v.abs()));
    let bound = (10.0 * r64).max(64.0 * f64::EPSILON * bnorm.max(1.0));
    assert!(
        rmx <= bound,
        "fallback did not recover: mixed residual {rmx:e} vs f64 {r64:e}"
    );
}

#[test]
fn refine_iteration_counts_surface_in_metrics() {
    if precision_forced() {
        return;
    }
    let t = workloads::kms(48, 0.9);
    let (b, _) = workloads::rhs_for_ones(&t);
    let smx = solver_with(&t, Precision::Mixed);
    let before = metrics::total(Counter::RefineIterations);
    smx.solve(&b).unwrap();
    assert!(
        metrics::total(Counter::RefineIterations) > before,
        "a mixed solve must run (and count) refinement iterations"
    );
}

#[test]
fn mixed_solve_batch_matches_looped_solves() {
    // The batched path must dispatch precision identically per column.
    let t = workloads::kms(32, 0.8);
    let n = t.order();
    let b = Matrix::from_fn(n, 5, |i, j| ((i * 17 + j * 3) % 11) as f64 - 5.0);
    let smx = solver_with(&t, Precision::Mixed);
    let looped = smx.solve_many(&b).unwrap();
    let batched = smx.solve_batch(&b).unwrap();
    assert_eq!(
        batched.max_abs_diff(&looped),
        0.0,
        "mixed batched solve differs from looped"
    );
}

#[test]
fn bs_precision_env_overrides_plan_requests() {
    // The test honors whatever tier it runs under: with BS_PRECISION
    // set (check.sh's precision tier), a default request lands on the
    // forced precision; unset, it stays f64.
    let expected = std::env::var("BS_PRECISION")
        .ok()
        .and_then(|v| Precision::parse(&v))
        .unwrap_or(Precision::F64);
    let plan = FactorPlan::for_shape(32, 2, &PlanRequest::default()).unwrap();
    assert_eq!(plan.precision(), expected);
    // Round-trip of the names the env var and CLI accept.
    for p in [Precision::F64, Precision::F32, Precision::Mixed] {
        assert_eq!(Precision::parse(p.as_str()), Some(p));
    }
}
