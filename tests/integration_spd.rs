//! End-to-end SPD pipeline tests across crates: workloads → generator →
//! block Schur factorization → solve, cross-checked against dense
//! factorizations and across every configuration axis.

use block_schur::prelude::*;

fn max_err(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

#[test]
fn schur_equals_dense_cholesky_across_workloads() {
    let cases: Vec<(SymBlockToeplitz, &str)> = vec![
        (workloads::kms(48, 0.8), "kms(0.8)"),
        (workloads::kms(48, 0.95), "kms(0.95)"),
        (workloads::random_spd_scalar(48, 1), "random scalar"),
        (workloads::random_spd_block(3, 16, 2), "random block m=3"),
        (workloads::spd_ar1_block(4, 12, 0.7, 3), "ar1 m=4"),
    ];
    for (t, label) in cases {
        let f = factor_spd(&t, &SchurOptions::default()).unwrap();
        let l = block_schur::matrix::chol::cholesky(&t.to_dense()).unwrap();
        let lt = l.transpose();
        let diff = f.r.max_abs_diff(&lt);
        assert!(diff < 1e-9, "{label}: R vs dense Cholesky diff {diff:e}");
    }
}

#[test]
fn all_option_combinations_agree() {
    let t = workloads::random_spd_block(2, 12, 9);
    let reference = factor_spd(&t, &SchurOptions::default()).unwrap();
    for rep in RepKind::ALL {
        for threads in [1usize, 2, 7] {
            for explicit_shift in [false, true] {
                let opts = SchurOptions {
                    rep,
                    exec: ExecPolicy {
                        threads,
                        min_work: 1,
                        partition: Partition::Auto,
                    },
                    explicit_shift,
                    ..Default::default()
                };
                let f = factor_spd(&t, &opts).unwrap();
                let diff = f.r.max_abs_diff(&reference.r);
                assert!(
                    diff < 1e-10,
                    "rep={rep:?} threads={threads} shift={explicit_shift}: diff {diff:e}"
                );
            }
        }
    }
}

#[test]
fn retiling_preserves_solutions() {
    let n = 96;
    let t = workloads::random_spd_scalar(n, 17);
    let (b, x_true) = workloads::rhs_for_ones(&t);
    for ms_ in [1usize, 2, 3, 4, 6, 8, 12, 16, 24, 32] {
        let opts = SchurOptions {
            block_size: Some(ms_),
            ..Default::default()
        };
        let f = factor_spd(&t, &opts).unwrap();
        let x = f.solve(&b).unwrap();
        assert!(
            max_err(&x, &x_true) < 1e-8,
            "m_s={ms_}: error {:e}",
            max_err(&x, &x_true)
        );
    }
}

#[test]
fn block_retiling_multiples_of_structural_m() {
    let t = workloads::random_spd_block(3, 16, 21); // n = 48, m = 3
    let d0 = t.to_dense();
    for ms_ in [3usize, 6, 12, 24] {
        let opts = SchurOptions {
            block_size: Some(ms_),
            ..Default::default()
        };
        let f = factor_spd(&t, &opts).unwrap();
        assert!(f.reconstruct().max_abs_diff(&d0) < 1e-9, "m_s={ms_}");
    }
}

#[test]
fn solve_matches_dense_lu_solution() {
    let t = workloads::random_spd_block(4, 10, 5);
    let n = t.order();
    let x_star: Vec<f64> = (0..n).map(|i| ((i * 29 % 13) as f64) - 6.0).collect();
    let b = t.matvec(&x_star);
    let f = factor_spd(&t, &SchurOptions::default()).unwrap();
    let x_schur = f.solve(&b).unwrap();
    let x_lu = block_schur::baselines::dense_lu_solve(&t, &b).unwrap();
    assert!(max_err(&x_schur, &x_lu) < 1e-8);
    assert!(max_err(&x_schur, &x_star) < 1e-7);
}

#[test]
fn ill_conditioned_kms_still_factors() {
    // KMS with rho = 0.999: condition ~ 1e6-range. The Schur algorithm
    // must survive and the residual must stay proportional to cond.
    let t = workloads::kms(64, 0.999);
    let f = factor_spd(&t, &SchurOptions::default()).unwrap();
    let (b, x_true) = workloads::rhs_for_ones(&t);
    let x = f.solve(&b).unwrap();
    // Residual (not solution error) must be small.
    let r = t.residual(&x, &b);
    let rn = block_schur::matrix::norms::vec_two(&r);
    assert!(rn < 1e-9, "residual {rn:e}");
    // Solution error bounded by cond * eps-ish.
    assert!(max_err(&x, &x_true) < 1e-6);
}

#[test]
fn generator_signature_is_spd_for_spd_matrices() {
    for seed in 0..5 {
        let t = workloads::random_spd_block(2, 8, 100 + seed);
        let g = build_generator(&t).unwrap();
        assert!(g.is_spd_signature(), "seed {seed}");
        assert_eq!(g.data.rows(), 4);
        assert_eq!(g.data.cols(), t.order());
    }
}

#[test]
fn flop_count_scales_linearly_with_block_size() {
    // The §6.5 model: work ≈ 4·m_s·n², linear in m_s.
    let n = 256;
    let t = workloads::random_spd_scalar(n, 3);
    let count = |ms_: usize| {
        let opts = SchurOptions {
            block_size: Some(ms_),
            ..Default::default()
        };
        block_schur::matrix::flops::reset();
        let _ = factor_spd(&t, &opts).unwrap();
        block_schur::matrix::flops::get() as f64
    };
    let f4 = count(4);
    let f16 = count(16);
    let ratio = f16 / f4;
    assert!(
        (ratio - 4.0).abs() < 1.0,
        "flops(m_s=16)/flops(m_s=4) = {ratio}, expected ≈ 4"
    );
}
