//! Randomized property tests on the core invariants: factorization
//! reconstruction, hyperbolic-norm preservation, the displacement
//! identity, retiling invariance, and solver agreement — over
//! *generated* inputs (deterministic seed sweeps) rather than fixed
//! examples.

use block_schur::matrix::blas1::wdot;
use block_schur::matrix::Matrix;
use block_schur::prelude::*;
use block_schur::toeplitz::rng::Rng;

/// First row of a diagonally dominant SPD scalar Toeplitz matrix
/// (t₀ = 1, Σ|t_k| ≤ 0.45).
fn spd_scalar_row(rng: &mut Rng, max_n: usize) -> Vec<f64> {
    let n = 2 + (rng.next_u64() as usize) % (max_n - 1);
    let tail: Vec<f64> = (0..n - 1).map(|_| rng.range(-1.0, 1.0)).collect();
    let sum: f64 = tail.iter().map(|v| v.abs()).sum();
    let scale = if sum > 0.0 { 0.45 / sum.max(1.0) } else { 0.0 };
    let mut row = vec![1.0];
    row.extend(tail.iter().map(|v| v * scale));
    row
}

/// A symmetric indefinite row with a forced singular 2x2 leading minor
/// (t₀ = t₁ = 1).
fn singular_minor_row(rng: &mut Rng, max_n: usize) -> Vec<f64> {
    let n = 3 + (rng.next_u64() as usize) % (max_n - 2);
    let mut row = vec![1.0, 1.0];
    row.extend((0..n - 2).map(|_| rng.range(-0.45, 0.45)));
    row
}

#[test]
fn factor_reconstructs_spd_toeplitz() {
    for seed in 0..48 {
        let mut rng = Rng::seed_from_u64(1000 + seed);
        let row = spd_scalar_row(&mut rng, 40);
        let t = SymBlockToeplitz::from_scalar_row(&row);
        let f = factor_spd(&t, &SchurOptions::default()).unwrap();
        let diff = f.reconstruct().max_abs_diff(&t.to_dense());
        assert!(diff < 1e-10, "seed {seed}: reconstruction diff {diff:e}");
        // R upper triangular with positive diagonal.
        for j in 0..t.order() {
            assert!(f.r[(j, j)] > 0.0, "seed {seed}");
            for i in j + 1..t.order() {
                assert_eq!(f.r[(i, j)], 0.0, "seed {seed}");
            }
        }
    }
}

#[test]
fn solve_round_trips() {
    for seed in 0..48 {
        let mut rng = Rng::seed_from_u64(2000 + seed);
        let row = spd_scalar_row(&mut rng, 32);
        let xseed = rng.next_u64() % 1000;
        let t = SymBlockToeplitz::from_scalar_row(&row);
        let n = t.order();
        let x_star: Vec<f64> = (0..n)
            .map(|i| (((i as u64 * 2654435761 + xseed) % 17) as f64) - 8.0)
            .collect();
        let b = t.matvec(&x_star);
        let f = factor_spd(&t, &SchurOptions::default()).unwrap();
        let x = f.solve(&b).unwrap();
        for i in 0..n {
            assert!((x[i] - x_star[i]).abs() < 1e-7, "seed {seed} i={i}");
        }
    }
}

#[test]
fn retiling_never_changes_the_matrix() {
    for seed in 0..24 {
        let mut rng = Rng::seed_from_u64(3000 + seed);
        let row = spd_scalar_row(&mut rng, 24);
        let t = SymBlockToeplitz::from_scalar_row(&row);
        let n = t.order();
        let d0 = t.to_dense();
        for ms_ in 1..=n {
            if n.is_multiple_of(ms_) {
                assert!(
                    t.retile(ms_).to_dense().max_abs_diff(&d0) == 0.0,
                    "seed {seed} m_s = {ms_}"
                );
            }
        }
    }
}

#[test]
fn displacement_identity_holds() {
    for seed in 0..48 {
        let mut rng = Rng::seed_from_u64(4000 + seed);
        let row = spd_scalar_row(&mut rng, 24);
        let t = SymBlockToeplitz::from_scalar_row(&row);
        let g = build_generator(&t).unwrap();
        let lhs = block_schur::toeplitz::displacement::displacement_dense(&t);
        let rhs = block_schur::toeplitz::generator::displacement_from_generator(&g);
        assert!(lhs.max_abs_diff(&rhs) < 1e-11, "seed {seed}");
    }
}

#[test]
fn reflectors_preserve_hyperbolic_norm() {
    use block_schur::core::reflector::HypReflector;
    for seed in 0..48 {
        let mut rng = Rng::seed_from_u64(5000 + seed);
        let pivot = rng.range(2.0, 5.0);
        let m = 1 + (rng.next_u64() as usize) % 5;
        let low: Vec<f64> = (0..m).map(|_| rng.range(-1.0, 1.0)).collect();
        let probe: Vec<f64> = (0..12).map(|_| rng.range(-2.0, 2.0)).collect();
        let w = Signature::hyperbolic(m);
        let mut u = vec![0.0; 2 * m];
        u[0] = pivot; // dominant pivot => positive hyperbolic norm
        u[m..].copy_from_slice(&low);
        let (r, h) = HypReflector::compute(&u, &w, 0);
        assert!(h > 0.0, "seed {seed}");
        let r = r.unwrap();
        // Any probe vector keeps its hyperbolic norm.
        let mut c: Vec<f64> = probe[..2 * m].to_vec();
        let h0 = wdot(&c, &w.0, &c);
        r.apply_col(&w, &mut c);
        let h1 = wdot(&c, &w.0, &c);
        assert!(
            (h0 - h1).abs() < 1e-9 * (1.0 + h0.abs()),
            "seed {seed}: {h0} vs {h1}"
        );
        // And u itself maps to -sigma e_0.
        let mut uu = u.clone();
        r.apply_col(&w, &mut uu);
        assert!((uu[0] + r.sigma).abs() < 1e-10, "seed {seed}");
        for v in &uu[1..] {
            assert!(v.abs() < 1e-10, "seed {seed}");
        }
    }
}

#[test]
fn levinson_agrees_with_schur() {
    for seed in 0..48 {
        let mut rng = Rng::seed_from_u64(6000 + seed);
        let row = spd_scalar_row(&mut rng, 32);
        let t = SymBlockToeplitz::from_scalar_row(&row);
        let (b, _) = workloads::rhs_for_ones(&t);
        let x_lev = block_schur::baselines::levinson_solve(&row, &b).unwrap();
        let f = factor_spd(&t, &SchurOptions::default()).unwrap();
        let x_schur = f.solve(&b).unwrap();
        for i in 0..t.order() {
            assert!((x_lev[i] - x_schur[i]).abs() < 1e-7, "seed {seed} i={i}");
        }
    }
}

#[test]
fn perturbed_factorization_error_is_order_delta() {
    for seed in 0..48 {
        let mut rng = Rng::seed_from_u64(7000 + seed);
        let row = singular_minor_row(&mut rng, 24);
        let t = SymBlockToeplitz::from_scalar_row(&row);
        let opts = IndefOptions::default();
        let f = match factor_indefinite(&t, &opts) {
            Ok(f) => f,
            Err(_) => continue, // exchange impossible on degenerate input
        };
        let delta = opts.effective_delta();
        let diff = f.reconstruct().max_abs_diff(&t.to_dense());
        let scale = t.norm_inf().max(1.0);
        // RᵀDR = T + δT with ‖δT‖ = O(δ‖T‖); allow generous slack for
        // the transformation growth factor.
        assert!(
            diff <= 1e4 * delta * scale,
            "seed {seed}: perturbation blow-up: {diff:e} vs delta {delta:e}"
        );
    }
}

#[test]
fn refinement_solves_singular_minor_systems() {
    for seed in 0..48 {
        let mut rng = Rng::seed_from_u64(8000 + seed);
        let row = singular_minor_row(&mut rng, 20);
        let t = SymBlockToeplitz::from_scalar_row(&row);
        // Skip matrices that are singular as a whole.
        if block_schur::matrix::lu::lu_factor(&t.to_dense()).is_err() {
            continue;
        }
        let cond = block_schur::matrix::norms::cond_one_estimate(&t.to_dense());
        if !cond.is_finite() || cond > 1e8 {
            continue; // too ill-conditioned for a 1e-8 assertion
        }
        let (b, x_true) = workloads::rhs_for_ones(&t);
        let f = match factor_indefinite(&t, &IndefOptions::default()) {
            Ok(f) => f,
            Err(_) => continue,
        };
        let res = solve_refined(&t, &f, &b, &RefineOptions::default()).unwrap();
        let err = res
            .x
            .iter()
            .zip(&x_true)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(
            err < 1e-8 * cond.max(1.0),
            "seed {seed}: err {err:e} cond {cond:e}"
        );
    }
}

#[test]
fn matvec_matches_dense() {
    for seed in 0..48 {
        let mut rng = Rng::seed_from_u64(9000 + seed);
        let m = 1 + (rng.next_u64() as usize) % 3;
        let p = 2 + (rng.next_u64() as usize) % 4;
        let t = workloads::random_spd_block(m, p, rng.next_u64() % 500);
        let n = t.order();
        let x: Vec<f64> = (0..n).map(|i| ((i * 37 % 23) as f64) / 7.0 - 1.5).collect();
        let got = t.matvec(&x);
        let dense = t.to_dense();
        let mut want = vec![0.0; n];
        block_schur::matrix::blas2::gemv(1.0, dense.rf(), &x, 0.0, &mut want);
        for i in 0..n {
            assert!((got[i] - want[i]).abs() < 1e-11, "seed {seed} i={i}");
        }
    }
}

#[test]
fn gemm_transpose_identity() {
    for seed in 0..48 {
        let mut rng = Rng::seed_from_u64(10_000 + seed);
        let mdim = 1 + (rng.next_u64() as usize) % 11;
        let k = 1 + (rng.next_u64() as usize) % 11;
        let ndim = 1 + (rng.next_u64() as usize) % 11;
        // (A B)ᵀ == Bᵀ Aᵀ through independent gemm dispatch paths.
        let a = Matrix::from_fn(mdim, k, |_, _| rng.range(-2.0, 2.0));
        let b = Matrix::from_fn(k, ndim, |_, _| rng.range(-2.0, 2.0));
        let mut ab = Matrix::zeros(mdim, ndim);
        block_schur::matrix::gemm(
            1.0,
            a.rf(),
            block_schur::matrix::Trans::No,
            b.rf(),
            block_schur::matrix::Trans::No,
            0.0,
            ab.mt(),
        );
        let mut btat = Matrix::zeros(ndim, mdim);
        block_schur::matrix::gemm(
            1.0,
            b.rf(),
            block_schur::matrix::Trans::Yes,
            a.rf(),
            block_schur::matrix::Trans::Yes,
            0.0,
            btat.mt(),
        );
        assert!(ab.transpose().max_abs_diff(&btat) < 1e-10, "seed {seed}");
    }
}

#[test]
fn fft_matvec_matches_direct() {
    for seed in 0..32 {
        let mut rng = Rng::seed_from_u64(11_000 + seed);
        let row = spd_scalar_row(&mut rng, 48);
        let t = SymBlockToeplitz::from_scalar_row(&row);
        let n = t.order();
        let fast = block_schur::toeplitz::FastToeplitzMatVec::new(&t);
        let x: Vec<f64> = (0..n).map(|i| ((i * 23 % 11) as f64) - 5.0).collect();
        let direct = t.matvec(&x);
        let via_fft = fast.apply(&x);
        for i in 0..n {
            assert!((direct[i] - via_fft[i]).abs() < 1e-10, "seed {seed} i={i}");
        }
    }
}

#[test]
fn gohberg_semencul_inverts() {
    for seed in 0..32 {
        let mut rng = Rng::seed_from_u64(12_000 + seed);
        let row = spd_scalar_row(&mut rng, 32);
        let t = SymBlockToeplitz::from_scalar_row(&row);
        let solver = ToeplitzSolver::new(&t).unwrap();
        let inv = solver.inverse_representation().unwrap();
        let n = t.order();
        let x: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64 * 0.31).sin()).collect();
        let tx = t.matvec(&x);
        let back = inv.apply(&tx);
        for i in 0..n {
            assert!((back[i] - x[i]).abs() < 1e-8, "seed {seed} i={i}");
        }
    }
}

#[test]
fn block_levinson_agrees_with_schur_on_spd() {
    for seed in 0..32 {
        let mut rng = Rng::seed_from_u64(13_000 + seed);
        let m = 1 + (rng.next_u64() as usize) % 3;
        let p = 2 + (rng.next_u64() as usize) % 6;
        let t = workloads::random_spd_block(m, p, rng.next_u64() % 300);
        let (b, _) = workloads::rhs_for_ones(&t);
        let x_bl = block_schur::baselines::block_levinson_solve(&t, &b).unwrap();
        let f = factor_spd(&t, &SchurOptions::default()).unwrap();
        let x_schur = f.solve(&b).unwrap();
        for i in 0..t.order() {
            assert!((x_bl[i] - x_schur[i]).abs() < 1e-7, "seed {seed} i={i}");
        }
    }
}

#[test]
fn eigenvalue_sum_matches_trace() {
    for seed in 0..32 {
        let mut rng = Rng::seed_from_u64(14_000 + seed);
        let row = spd_scalar_row(&mut rng, 24);
        let t = SymBlockToeplitz::from_scalar_row(&row);
        let n = t.order();
        let ev = block_schur::matrix::eig::sym_eigenvalues(&t.to_dense()).unwrap();
        let trace = n as f64 * row[0];
        let sum: f64 = ev.iter().sum();
        assert!(
            (sum - trace).abs() < 1e-9 * trace.abs().max(1.0),
            "seed {seed}"
        );
        // SPD: every eigenvalue positive; cond agrees with the Schur
        // factorization succeeding.
        assert!(ev[0] > 0.0, "seed {seed}");
    }
}
