#!/usr/bin/env bash
# Repo gate: formatting, lints, the audit layer, and the tiered test
# suite. Run from anywhere; operates on the workspace root.
#
# Opt-in knobs:
#   BS_SAN=thread|address  nightly sanitizer pass over the concurrency
#                          surface (needs rust-src for -Zbuild-std)
#   BS_BENCH_GATE=1|strict bench regression gate vs BENCH_schur.json
set -euo pipefail
cd "$(dirname "$0")/.."

# Every completed tier lands in this list; the summary line echoes it
# so CI logs show at a glance which gates actually ran.
TIERS=()

echo "==> cargo fmt --check"
cargo fmt --all -- --check
TIERS+=("fmt")

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings
TIERS+=("clippy")

echo "==> audit tier: bs-lint (lint.toml: unsafe-contract, atomics manifest, hot-path coverage)"
cargo run -q -p bs-lint
echo "==> audit tier: waiver honesty report (empty or copy-pasted justifications fail)"
cargo run -q -p bs-lint -- --waivers
echo "==> audit tier: bs-lint self-tests"
cargo test -q -p bs-lint
TIERS+=("audit")

echo "==> tier-1: cargo build --release && cargo test"
cargo build --release
cargo test -q
TIERS+=("tier1")

echo "==> workspace crate tests"
cargo test -q --workspace
TIERS+=("workspace")

echo "==> execution tier: workspace tests under BS_THREADS=1 and BS_THREADS=max"
# SchurOptions::default() reads BS_THREADS, so these two runs push the
# whole suite through the forced-sequential and fully-pooled paths; the
# determinism contract says both must pass identically.
BS_THREADS=1 cargo test -q --workspace
BS_THREADS=max cargo test -q --workspace
TIERS+=("exec")

echo "==> kernel tier: full workspace suite forced onto the portable microkernel"
# BS_KERNEL=portable pins the scalar microkernel: every test must pass
# with SIMD dispatch disabled (the fallback the engine degrades to on
# hardware without AVX2/NEON).
BS_KERNEL=portable cargo test -q --workspace
TIERS+=("kernel")

echo "==> precision tier: refinement-convergence suite, then engine demoted to f32"
# The mixed-precision contract (§8.1): f32 factors + f64 refinement land
# within 10x of pure f64 across the conditioning sweep, with the stall
# fallback covering the ill-conditioned tail.
cargo test -q --test refinement
# BS_PRECISION=f32 forces every plan request onto the demoted f32 factor
# stage; the execution determinism contracts (batched == looped,
# thread-count invariance) and the env-override test must hold with the
# whole plan path running single precision. Tests pinning mixed/f64
# semantics skip themselves under the override.
BS_PRECISION=f32 cargo test -q --test refinement
BS_PRECISION=f32 cargo test -q --test execution
TIERS+=("precision")

echo "==> serve tier: serving-layer suite plus loopback load smoke"
# The multi-tenant front-end: cache semantics (single-flight, LRU,
# failed-build cleanup), wire-protocol round-trips, admission-control
# shedding, and the TCP/UDS loopback integration tests — then the
# open-loop load generator as a smoke run (4 clients hammering 2 hot
# operators; asserts exactly 2 factorizations, zero sheds, bitwise
# responses, and the warm-cache speedup floor).
cargo test -q -p bs-serve
cargo run -q -p bs-bench --release --bin serve_load -- --quick
TIERS+=("serve")

echo "==> dist tier: sharded executor smoke (NP=1/2/4) plus scheme cross-validation"
# The measured sharded backend: integration suite covers shard-vs-
# sequential residuals at NP in {1,2,4} across V1/V2/V3, bitwise
# reproducibility, and the distmem failure paths (poisoned barriers,
# recv-timeout diagnostics); the quick dist_sweep run then measures the
# real multi-rank wall times and cross-checks every scheme against the
# sequential factor (perf floors self-waive on starved hosts).
cargo test -q --test integration_distributed
cargo run -q -p bs-bench --release --bin dist_sweep -- --quick
TIERS+=("dist")

echo "==> kernel tier: avx512 feature build (runtime-gated microkernel)"
cargo test -q -p bs-matrix --features avx512
TIERS+=("avx512")

echo "==> paranoid tier: invariant contracts enabled"
cargo test -q -p bs-core --features paranoid
TIERS+=("paranoid")

echo "==> miri tier: designated core suite under the interpreter"
# The cfg(miri) shims (portable kernel dispatch, no-op FTZ scope,
# default cache sizes) keep the algorithm paths interpretable; the
# designated suite is crates/core/tests/miri_smoke.rs. Skips cleanly
# where the nightly miri component is not installed (offline images).
if cargo +nightly miri --version >/dev/null 2>&1; then
  MIRIFLAGS="-Zmiri-disable-isolation" \
    cargo +nightly miri test -q -p bs-core --test miri_smoke
  TIERS+=("miri")
else
  echo "    (cargo +nightly miri not available — skipping)"
  TIERS+=("miri[skipped]")
fi

# Sanitizer tier — strictly opt-in: needs nightly plus the rust-src
# component so std itself is instrumented (-Zbuild-std), neither of
# which offline images carry. BS_SAN=thread exercises the worker pool's
# claim/barrier protocol; BS_SAN=address the packing and arena paths.
case "${BS_SAN:-off}" in
  thread | address)
    echo "==> sanitizer tier: ${BS_SAN} (nightly + rust-src)"
    san_target="$(rustc -vV | sed -n 's/^host: //p')"
    RUSTFLAGS="-Zsanitizer=${BS_SAN}" \
      cargo +nightly test -q -Zbuild-std -p bs-matrix --target "${san_target}"
    TIERS+=("san:${BS_SAN}")
    ;;
  off) ;;
  *)
    echo "check.sh: unknown BS_SAN='${BS_SAN}' (expected thread|address)" >&2
    exit 2
    ;;
esac

echo "==> cargo doc (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet
TIERS+=("doc")

echo "==> cross_validate smoke run"
cargo run -q -p bs-bench --release --bin cross_validate -- --quick
TIERS+=("xval")

echo "==> profile tier: disabled-instrumentation overhead contract (<2%)"
cargo run -q -p bs-bench --release --bin profile_overhead -- --quick
TIERS+=("profile")

# Bench regression gate — opt-in because it re-runs the full (non-quick)
# reproduce_all sweep. BS_BENCH_GATE=1 diffs fresh @@BENCH records
# against the committed BENCH_schur.json and writes BENCH_regressions.json
# in report-only mode; BS_BENCH_GATE=strict makes drift fail the gate.
# BS_BENCH_OUT keeps the fresh report out of the committed baseline.
if [[ "${BS_BENCH_GATE:-0}" != "0" ]]; then
  echo "==> profile tier: bench regression gate vs committed BENCH_schur.json"
  BS_BENCH_OUT=target/BENCH_current.json \
    cargo run -q -p bs-bench --release --bin reproduce_all
  TIERS+=("bench-gate")
fi

echo "check.sh: all green — tiers: ${TIERS[*]}"
