#!/usr/bin/env bash
# Repo gate: formatting, lints, and the tier-1 build + test suite.
# Run from anywhere; operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> bs-lint (domain static-analysis gate, lint.toml)"
cargo run -q -p bs-lint

echo "==> bs-lint self-tests"
cargo test -q -p bs-lint

echo "==> tier-1: cargo build --release && cargo test"
cargo build --release
cargo test -q

echo "==> workspace crate tests"
cargo test -q --workspace

echo "==> execution tier: workspace tests under BS_THREADS=1 and BS_THREADS=max"
# SchurOptions::default() reads BS_THREADS, so these two runs push the
# whole suite through the forced-sequential and fully-pooled paths; the
# determinism contract says both must pass identically.
BS_THREADS=1 cargo test -q --workspace
BS_THREADS=max cargo test -q --workspace

echo "==> kernel tier: full workspace suite forced onto the portable microkernel"
# BS_KERNEL=portable pins the scalar microkernel: every test must pass
# with SIMD dispatch disabled (the fallback the engine degrades to on
# hardware without AVX2/NEON).
BS_KERNEL=portable cargo test -q --workspace

echo "==> precision tier: refinement-convergence suite, then engine demoted to f32"
# The mixed-precision contract (§8.1): f32 factors + f64 refinement land
# within 10x of pure f64 across the conditioning sweep, with the stall
# fallback covering the ill-conditioned tail.
cargo test -q --test refinement
# BS_PRECISION=f32 forces every plan request onto the demoted f32 factor
# stage; the execution determinism contracts (batched == looped,
# thread-count invariance) and the env-override test must hold with the
# whole plan path running single precision. Tests pinning mixed/f64
# semantics skip themselves under the override.
BS_PRECISION=f32 cargo test -q --test refinement
BS_PRECISION=f32 cargo test -q --test execution

echo "==> kernel tier: avx512 feature build (runtime-gated microkernel)"
cargo test -q -p bs-matrix --features avx512

echo "==> paranoid tier: invariant contracts enabled"
cargo test -q -p bs-core --features paranoid

echo "==> cargo doc (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> cross_validate smoke run"
cargo run -q -p bs-bench --release --bin cross_validate -- --quick

echo "==> profile tier: disabled-instrumentation overhead contract (<2%)"
cargo run -q -p bs-bench --release --bin profile_overhead -- --quick

# Bench regression gate — opt-in because it re-runs the full (non-quick)
# reproduce_all sweep. BS_BENCH_GATE=1 diffs fresh @@BENCH records
# against the committed BENCH_schur.json and writes BENCH_regressions.json
# in report-only mode; BS_BENCH_GATE=strict makes drift fail the gate.
# BS_BENCH_OUT keeps the fresh report out of the committed baseline.
if [[ "${BS_BENCH_GATE:-0}" != "0" ]]; then
  echo "==> profile tier: bench regression gate vs committed BENCH_schur.json"
  BS_BENCH_OUT=target/BENCH_current.json \
    cargo run -q -p bs-bench --release --bin reproduce_all
fi

echo "check.sh: all green"
