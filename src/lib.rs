//! **block-schur** — a reproduction of *"On Solving Block Toeplitz
//! Systems Using a Block Schur Algorithm"* (Thirumalai, Gallivan,
//! Van Dooren; ICPP 1994) as a Rust workspace.
//!
//! This facade crate re-exports the workspace members:
//!
//! - [`matrix`] — dense kernels (the BLAS stand-in);
//! - [`toeplitz`] — symmetric block Toeplitz representations,
//!   displacement structure, generators, synthetic workloads;
//! - [`core`] — the block Schur factorization itself (hyperbolic
//!   Householder reflectors, the four block representations, the SPD
//!   driver, the indefinite extension with perturbation, iterative
//!   refinement);
//! - [`baselines`] — Levinson, scalar Schur, dense solves, (P)CG;
//! - [`distmem`] — message-passing runtime with virtual clocks;
//! - [`simulator`] — Cray T3D machine model and the three data
//!   distribution schemes;
//! - [`perfmodel`] — the paper's analytic flop formulas (eqs. 25-32).
//!
//! # Quickstart
//!
//! ```
//! use block_schur::prelude::*;
//!
//! // An SPD block Toeplitz matrix (block size 2, 8 block rows).
//! let t = workloads::random_spd_block(2, 8, 42);
//! // Factor T = RᵀR with the block Schur algorithm.
//! let f = factor_spd(&t, &SchurOptions::default()).unwrap();
//! // Solve T x = b.
//! let (b, x_true) = workloads::rhs_for_ones(&t);
//! let x = f.solve(&b).unwrap();
//! assert!((x[0] - x_true[0]).abs() < 1e-8);
//! ```

pub mod cli;

pub use bs_baselines as baselines;
pub use bs_core as core;
pub use bs_distmem as distmem;
pub use bs_matrix as matrix;
pub use bs_perfmodel as perfmodel;
pub use bs_simulator as simulator;
pub use bs_toeplitz as toeplitz;

/// The commonly used types and functions in one import.
pub mod prelude {
    pub use bs_core::{
        factor_indefinite, factor_spd, solve_refined, Factor, FactorPlan, Factorization,
        IndefFactor, IndefOptions, Perturbation, PlanRequest, PlanWorkspace, Precision,
        RefineOptions, RefineResult, RepKind, SchurOptions, SolverOptions, SpdFactor,
        ToeplitzSolver,
    };
    pub use bs_matrix::{ExecPolicy, Matrix, Partition, Signature};
    pub use bs_toeplitz::{build_generator, workloads, Generator, SymBlockToeplitz};
}
