//! The `block-schur` command-line tool. All logic lives in
//! [`block_schur::cli`]; this is the argument-dispatch shell.

use block_schur::cli::{self, CliError};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}\n\n{}", cli::USAGE);
            ExitCode::FAILURE
        }
    }
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn observe(args: &[String]) -> cli::Observe {
    cli::Observe {
        trace: flag(args, "--trace").map(PathBuf::from),
        profile: flag(args, "--profile").map(PathBuf::from),
        perfetto: flag(args, "--perfetto").map(PathBuf::from),
        metrics: has_flag(args, "--metrics"),
    }
}

fn block_size(args: &[String]) -> Result<Option<usize>, CliError> {
    flag(args, "--block-size")
        .map(|v| {
            v.parse::<usize>()
                .map_err(|_| CliError::Usage(format!("bad block size {v:?}")))
        })
        .transpose()
}

fn threads(args: &[String]) -> Result<Option<usize>, CliError> {
    flag(args, "--threads")
        .map(|v| cli::parse_threads_flag(&v))
        .transpose()
}

/// The engine triple (`--block-size`, `--threads`, `--precision`)
/// shared by solve / factor / plan.
fn engine(args: &[String]) -> Result<cli::EngineArgs, CliError> {
    Ok(cli::EngineArgs {
        block_size: block_size(args)?,
        threads: threads(args)?,
        precision: flag(args, "--precision")
            .map(|v| cli::parse_precision_flag(&v))
            .transpose()?
            .unwrap_or_default(),
    })
}

fn run(args: &[String]) -> Result<String, CliError> {
    let cmd = args
        .first()
        .ok_or_else(|| CliError::Usage("missing command".into()))?;
    // Process-wide microkernel override; validated before any kernel
    // dispatch happens so a typo fails fast instead of running native.
    if let Some(k) = flag(args, "--kernel") {
        cli::apply_kernel_flag(&k)?;
    }
    match cmd.as_str() {
        "info" => {
            let m = args
                .get(1)
                .ok_or_else(|| CliError::Usage("info needs a matrix file".into()))?;
            cli::cmd_info(Path::new(m))
        }
        "solve" => {
            let m = args
                .get(1)
                .ok_or_else(|| CliError::Usage("solve needs a matrix file".into()))?;
            let rhs = flag(args, "--rhs").map(PathBuf::from);
            let batch = has_flag(args, "--batch");
            let eng = engine(args)?;
            let (x, report) =
                cli::cmd_solve(Path::new(m), rhs.as_deref(), batch, &eng, &observe(args))?;
            if let Some(out) = flag(args, "--output") {
                let text: String = x.iter().map(|v| format!("{v:.17e}\n")).collect();
                std::fs::write(out, text)?;
                Ok(report)
            } else {
                let mut s = report;
                for v in x {
                    s.push_str(&format!("{v:.12e}\n"));
                }
                Ok(s)
            }
        }
        "factor" => {
            let m = args
                .get(1)
                .ok_or_else(|| CliError::Usage("factor needs a matrix file".into()))?;
            if let Some(scheme) = flag(args, "--dist") {
                let np = flag(args, "--np")
                    .ok_or_else(|| CliError::Usage("factor --dist needs --np <ranks>".into()))?
                    .parse::<usize>()
                    .map_err(|_| CliError::Usage("bad --np".into()))?;
                cli::cmd_factor_dist(Path::new(m), &scheme, np, &observe(args))
            } else {
                cli::cmd_factor(Path::new(m), &engine(args)?, &observe(args))
            }
        }
        "plan" => {
            // Shape from an explicit --n/--m pair or from a matrix file.
            let shape = match flag(args, "--n") {
                Some(nv) => {
                    let n = nv
                        .parse::<usize>()
                        .map_err(|_| CliError::Usage("bad --n".into()))?;
                    let m = flag(args, "--m")
                        .map(|v| {
                            v.parse::<usize>()
                                .map_err(|_| CliError::Usage("bad --m".into()))
                        })
                        .transpose()?
                        .unwrap_or(1);
                    (n, m)
                }
                None => {
                    let m = args
                        .get(1)
                        .filter(|a| !a.starts_with("--"))
                        .ok_or_else(|| {
                            CliError::Usage("plan needs a matrix file or --n <n>".into())
                        })?;
                    let t = cli::read_matrix(Path::new(m))?;
                    (t.order(), t.block_size())
                }
            };
            let rep = flag(args, "--rep");
            let calibrate = has_flag(args, "--calibrate");
            cli::cmd_plan(shape, rep.as_deref(), &engine(args)?, calibrate)
        }
        "gen" => {
            let kind = args
                .get(1)
                .ok_or_else(|| CliError::Usage("gen needs a workload kind".into()))?;
            let n = flag(args, "--n")
                .ok_or_else(|| CliError::Usage("gen needs --n".into()))?
                .parse::<usize>()
                .map_err(|_| CliError::Usage("bad --n".into()))?;
            let m = flag(args, "--m")
                .map(|v| {
                    v.parse::<usize>()
                        .map_err(|_| CliError::Usage("bad --m".into()))
                })
                .transpose()?
                .unwrap_or(1);
            let rho = flag(args, "--rho")
                .map(|v| {
                    v.parse::<f64>()
                        .map_err(|_| CliError::Usage("bad --rho".into()))
                })
                .transpose()?
                .unwrap_or(0.6);
            let seed = flag(args, "--seed")
                .map(|v| {
                    v.parse::<u64>()
                        .map_err(|_| CliError::Usage("bad --seed".into()))
                })
                .transpose()?
                .unwrap_or(0);
            let out = flag(args, "--output")
                .ok_or_else(|| CliError::Usage("gen needs --output".into()))?;
            cli::cmd_gen(kind, n, m, rho, seed, Path::new(&out)).map(|s| s + "\n")
        }
        "simulate" => {
            let n = flag(args, "--n")
                .ok_or_else(|| CliError::Usage("simulate needs --n".into()))?
                .parse::<usize>()
                .map_err(|_| CliError::Usage("bad --n".into()))?;
            let m = flag(args, "--m")
                .ok_or_else(|| CliError::Usage("simulate needs --m".into()))?
                .parse::<usize>()
                .map_err(|_| CliError::Usage("bad --m".into()))?;
            let np = flag(args, "--np")
                .ok_or_else(|| CliError::Usage("simulate needs --np".into()))?
                .parse::<usize>()
                .map_err(|_| CliError::Usage("bad --np".into()))?;
            let scheme = flag(args, "--scheme")
                .ok_or_else(|| CliError::Usage("simulate needs --scheme".into()))?;
            cli::cmd_simulate(n, m, np, &scheme).map(|s| s + "\n")
        }
        "serve" => {
            let addr = flag(args, "--addr");
            let uds = flag(args, "--uds").map(PathBuf::from);
            let cache = flag(args, "--cache")
                .map(|v| {
                    v.parse::<usize>()
                        .map_err(|_| CliError::Usage(format!("bad cache capacity {v:?}")))
                })
                .transpose()?
                .unwrap_or(16);
            let inflight = flag(args, "--inflight")
                .map(|v| {
                    v.parse::<usize>()
                        .map_err(|_| CliError::Usage(format!("bad inflight bound {v:?}")))
                })
                .transpose()?
                .unwrap_or(64);
            cli::cmd_serve(addr.as_deref(), uds.as_deref(), cache, inflight)
        }
        "help" | "--help" | "-h" => Ok(format!("{}\n", cli::USAGE)),
        other => Err(CliError::Usage(format!("unknown command {other:?}"))),
    }
}
