//! Command-line interface logic for the `block-schur` binary.
//!
//! File format for matrices (plain text, whitespace separated):
//!
//! ```text
//! m p
//! <m*m values of block 0, row major>
//! <m*m values of block 1, row major>
//! ...
//! ```
//!
//! i.e. the first block row `T̂₁ … T̂_p` of the symmetric block Toeplitz
//! matrix. Right-hand sides are `n = m·p` whitespace-separated values.
//! All commands are exposed as functions so they can be unit-tested
//! without spawning the binary.

use crate::prelude::*;
use bs_matrix::Matrix;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Growth factors past this default are flagged in `--trace`/`--metrics`
/// output (≈ half the double-precision digits gone; §8.2 discussion).
pub const DEFAULT_GROWTH_THRESHOLD: f64 = 1e8;

/// Observability switches shared by `solve` and `factor`.
#[derive(Debug, Default, Clone)]
pub struct Observe {
    /// Write a JSON-lines trace (spans, per-step growth, metrics) here.
    pub trace: Option<PathBuf>,
    /// Write a folded-stack profile (flamegraph input) here.
    pub profile: Option<PathBuf>,
    /// Write a Chrome/Perfetto trace-event JSON timeline here.
    pub perfetto: Option<PathBuf>,
    /// Append counter totals and stability summary to the report.
    pub metrics: bool,
}

/// Run context `finish` needs for the roofline join: the plan's
/// algorithmic block size and thread count.
#[derive(Debug, Clone, Copy)]
struct ObserveCtx {
    block_size: usize,
    threads: usize,
}

impl Observe {
    fn active(&self) -> bool {
        self.trace.is_some() || self.profile.is_some() || self.perfetto.is_some() || self.metrics
    }

    /// Arm the probe layer before running the instrumented operation.
    fn begin(&self) {
        if self.active() {
            bs_probe::reset_all();
            bs_probe::enable_all(DEFAULT_GROWTH_THRESHOLD);
        }
    }

    /// Export whatever was recorded and append a human summary.
    ///
    /// Drains the trace ONCE and fans the events out to every consumer
    /// (JSONL trace, folded profile, Perfetto timeline, roofline).
    /// Counter-derived numbers are snapshotted before the calibrated
    /// rate is fetched, because calibration runs kernel work of its own.
    fn finish(&self, report: &mut String, ctx: Option<ObserveCtx>) -> Result<(), CliError> {
        if !self.active() {
            return Ok(());
        }
        let dropped = bs_probe::trace::dropped_events();
        let events = bs_probe::trace::take_events();
        let stab = bs_probe::stability::take_report();
        bs_probe::disable_all();
        if dropped > 0 {
            let _ = writeln!(
                report,
                "warning: trace ring buffer saturated — {dropped} event(s) overwritten; \
                 traces and profiles below are a partial window \
                 (raise bs_probe::trace::set_capacity)"
            );
        }
        let need_profile = self.profile.is_some() || self.metrics;
        let prof = need_profile.then(|| bs_probe::Profile::from_events(&events));
        if self.metrics {
            let _ = writeln!(report, "metrics: {}", bs_probe::export::metrics_json());
            let _ = writeln!(report, "peak growth factor: {:.6e}", stab.peak_growth);
            for w in stab.warnings() {
                let _ = writeln!(report, "warning: {w}");
            }
            for h in bs_probe::Hist::ALL {
                let snap = bs_probe::histogram::merged(h);
                if !snap.is_empty() {
                    let _ = writeln!(report, "latency {}: {}", h.label(), snap.summary());
                }
            }
            if let (Some(prof), Some(ctx)) = (prof.as_ref(), ctx) {
                // Achieved rates first (counter snapshot), calibrated
                // ceiling second (calibration pollutes the counters).
                let roofline = bs_probe::Roofline::compute(prof, 0.0, ctx.threads);
                let cal = bs_matrix::kernel::calibrate::calibration();
                let rate = bs_perfmodel::RateTable::new(&cal.points).rate(ctx.block_size) / 1e9;
                report.push_str(&roofline.with_calibrated(rate).render());
                let _ = write!(report, "top spans by self time:\n{}", prof.top_table(8));
            }
        }
        if let Some(path) = &self.profile {
            let prof = prof.as_ref().expect("profile built when requested");
            std::fs::write(path, prof.folded())?;
            let _ = writeln!(
                report,
                "profile written to {} (folded stacks{})",
                path.display(),
                if prof.truncated() { ", TRUNCATED" } else { "" }
            );
        }
        if let Some(path) = &self.perfetto {
            bs_probe::export::write_perfetto(path, &events)?;
            let _ = writeln!(
                report,
                "timeline written to {} (Perfetto / chrome://tracing JSON)",
                path.display()
            );
        }
        if let Some(path) = &self.trace {
            std::fs::write(path, bs_probe::export::trace_jsonl(&events, &stab))?;
            let _ = writeln!(report, "trace written to {} (JSON-lines)", path.display());
        }
        Ok(())
    }
}

/// CLI-level errors (I/O, parsing, numerical).
#[derive(Debug)]
pub enum CliError {
    Io(std::io::Error),
    Parse(String),
    Numerical(String),
    Usage(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Io(e) => write!(f, "i/o error: {e}"),
            CliError::Parse(m) => write!(f, "parse error: {m}"),
            CliError::Numerical(m) => write!(f, "numerical error: {m}"),
            CliError::Usage(m) => write!(f, "usage error: {m}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

/// Parse a whitespace-separated stream of f64s.
fn parse_floats(text: &str) -> Result<Vec<f64>, CliError> {
    text.split_whitespace()
        .map(|tok| {
            tok.parse::<f64>()
                .map_err(|e| CliError::Parse(format!("bad number {tok:?}: {e}")))
        })
        .collect()
}

/// Read a symmetric block Toeplitz matrix from the text format above.
pub fn read_matrix(path: &Path) -> Result<SymBlockToeplitz, CliError> {
    let text = std::fs::read_to_string(path)?;
    let vals = parse_floats(&text)?;
    if vals.len() < 2 {
        return Err(CliError::Parse("expected header `m p`".into()));
    }
    let m = vals[0] as usize;
    let p = vals[1] as usize;
    if m == 0 || p == 0 || vals[0].fract() != 0.0 || vals[1].fract() != 0.0 {
        return Err(CliError::Parse(format!(
            "invalid header m = {}, p = {}",
            vals[0], vals[1]
        )));
    }
    let need = 2 + m * m * p;
    if vals.len() != need {
        return Err(CliError::Parse(format!(
            "expected {} values after the header, found {}",
            need - 2,
            vals.len() - 2
        )));
    }
    let blocks: Vec<Matrix> = (0..p)
        .map(|d| {
            let off = 2 + d * m * m;
            // Row-major in the file.
            Matrix::from_fn(m, m, |i, j| vals[off + i * m + j])
        })
        .collect();
    Ok(SymBlockToeplitz::new(blocks))
}

/// Write a matrix in the text format.
pub fn write_matrix(t: &SymBlockToeplitz, path: &Path) -> Result<(), CliError> {
    let m = t.block_size();
    let mut out = format!("{} {}\n", m, t.num_blocks());
    for blk in t.first_block_row() {
        for i in 0..m {
            for j in 0..m {
                let _ = write!(out, "{:.17e} ", blk[(i, j)]);
            }
            out.push('\n');
        }
    }
    std::fs::write(path, out)?;
    Ok(())
}

/// Read a right-hand-side vector.
pub fn read_vector(path: &Path, n: usize) -> Result<Vec<f64>, CliError> {
    let vals = parse_floats(&std::fs::read_to_string(path)?)?;
    if vals.len() != n {
        return Err(CliError::Parse(format!(
            "expected {n} values, found {}",
            vals.len()
        )));
    }
    Ok(vals)
}

/// Read a batched right-hand-side file: `k` columns of `n` values each,
/// column after column, into an `n x k` matrix.
pub fn read_rhs_columns(path: &Path, n: usize) -> Result<Matrix, CliError> {
    let vals = parse_floats(&std::fs::read_to_string(path)?)?;
    if vals.is_empty() || !vals.len().is_multiple_of(n) {
        return Err(CliError::Parse(format!(
            "batched rhs must hold a positive multiple of n = {n} values, found {}",
            vals.len()
        )));
    }
    let k = vals.len() / n;
    Ok(Matrix::from_fn(n, k, |i, j| vals[j * n + i]))
}

/// `info` command: structural and numerical summary.
pub fn cmd_info(matrix: &Path) -> Result<String, CliError> {
    let t = read_matrix(matrix)?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "symmetric block Toeplitz: n = {}, block size m = {}, p = {} blocks",
        t.order(),
        t.block_size(),
        t.num_blocks()
    );
    let _ = writeln!(out, "‖T‖_inf = {:.6e}", t.norm_inf());
    if t.order() <= 512 {
        if let Ok(ev) = bs_matrix::eig::sym_eigenvalues(&t.to_dense()) {
            let lo = ev.first().copied().unwrap_or(0.0);
            let hi = ev.last().copied().unwrap_or(0.0);
            let _ = writeln!(out, "spectrum: [{lo:.6e}, {hi:.6e}]");
            if lo > 0.0 {
                let _ = writeln!(out, "cond_2 = {:.6e}", hi / lo);
            }
        }
    }
    match ToeplitzSolver::new(&t) {
        Ok(s) => {
            let (pos, neg) = s.inertia();
            let (sign, ln) = s.det_sign_ln();
            let _ = writeln!(out, "positive definite: {}", s.is_positive_definite());
            let _ = writeln!(out, "inertia: {pos}+ / {neg}-");
            let _ = writeln!(out, "det: sign {sign:+.0}, ln|det| = {ln:.6}");
            if let Factorization::Indefinite(f) = s.factorization() {
                let _ = writeln!(
                    out,
                    "perturbations: {}, exchanges: {}",
                    f.perturbations.len(),
                    f.exchanges
                );
            }
        }
        Err(e) => {
            let _ = writeln!(out, "factorization failed: {e}");
        }
    }
    Ok(out)
}

/// Parse a `--threads` flag value: a positive count or `max`.
pub fn parse_threads_flag(s: &str) -> Result<usize, CliError> {
    bs_matrix::par::parse_threads(s)
        .ok_or_else(|| CliError::Usage(format!("bad --threads {s:?} (positive count or \"max\")")))
}

/// Parse a `--precision` flag value into a [`Precision`].
pub fn parse_precision_flag(s: &str) -> Result<Precision, CliError> {
    Precision::parse(s)
        .ok_or_else(|| CliError::Usage(format!("bad --precision {s:?} (f64 | f32 | mixed)")))
}

/// Parse and apply a `--kernel` flag: force the process-wide BLAS-3
/// microkernel choice (overrides `BS_KERNEL`). An explicit ISA the
/// machine cannot run degrades to the portable kernel at dispatch.
pub fn apply_kernel_flag(s: &str) -> Result<(), CliError> {
    let c = bs_matrix::kernel::parse_choice(s).ok_or_else(|| {
        CliError::Usage(format!(
            "bad --kernel {s:?} (portable | native | avx2 | avx512 | neon)"
        ))
    })?;
    bs_matrix::kernel::set_override(Some(c));
    Ok(())
}

/// Engine selection shared by `solve` / `factor` / `plan`: the pinned
/// algorithmic block size, the thread count, and the factor precision.
#[derive(Debug, Default, Clone)]
pub struct EngineArgs {
    pub block_size: Option<usize>,
    pub threads: Option<usize>,
    pub precision: Precision,
}

/// Driver options for `solve` / `factor`: the pinned block size plus
/// the execution policy (`--threads`, falling back to `BS_THREADS` /
/// sequential via the [`SchurOptions`] default).
fn solver_options(block_size: Option<usize>, threads: Option<usize>) -> SolverOptions {
    let mut spd = SchurOptions {
        block_size,
        ..Default::default()
    };
    if let Some(t) = threads {
        spd.exec = ExecPolicy::with_threads(t);
    }
    SolverOptions {
        spd,
        ..Default::default()
    }
}

/// Build the solver `solve` / `factor` run. The default f64 engine
/// keeps the pinned-options path (bitwise identical to prior
/// releases); a `--precision` of f32 or mixed routes through a
/// [`PlanRequest`] so the plan carries the demoted factor stage and
/// its refinement policy.
fn build_solver(t: &SymBlockToeplitz, eng: &EngineArgs) -> Result<ToeplitzSolver, CliError> {
    let built = if eng.precision == Precision::F64 {
        ToeplitzSolver::with_options(t, &solver_options(eng.block_size, eng.threads))
    } else {
        let req = PlanRequest {
            block_size: eng.block_size,
            threads: eng.threads,
            precision: eng.precision,
            ..Default::default()
        };
        ToeplitzSolver::with_plan_request(t, &req)
    };
    built.map_err(|e| CliError::Numerical(e.to_string()))
}

/// `solve` command: returns the solution (column-major when batched)
/// and a report.
pub fn cmd_solve(
    matrix: &Path,
    rhs: Option<&Path>,
    batch: bool,
    eng: &EngineArgs,
    obs: &Observe,
) -> Result<(Vec<f64>, String), CliError> {
    let t = read_matrix(matrix)?;
    let n = t.order();
    let b = if batch {
        let p = rhs.ok_or_else(|| {
            CliError::Usage("solve --batch needs --rhs <file> with k columns of n values".into())
        })?;
        read_rhs_columns(p, n)?
    } else {
        let col = match rhs {
            Some(p) => read_vector(p, n)?,
            None => t.matvec(&vec![1.0; n]), // reference RHS with x* = 1
        };
        Matrix::from_fn(n, 1, |i, _| col[i])
    };
    let k = b.cols();
    obs.begin();
    let start = std::time::Instant::now();
    let solver = build_solver(&t, eng)?;
    let x = if batch {
        solver.solve_batch(&b)
    } else {
        solver
            .solve(b.col(0))
            .map(|v| Matrix::from_fn(n, 1, |i, _| v[i]))
    }
    .map_err(|e| CliError::Numerical(e.to_string()))?;
    let secs = start.elapsed().as_secs_f64();
    // Worst relative residual over the batch (the single-RHS residual
    // when k = 1).
    let mut rel = 0.0f64;
    for j in 0..k {
        let r = t.residual(x.col(j), b.col(j));
        let c = bs_matrix::norms::vec_two(&r) / bs_matrix::norms::vec_two(b.col(j)).max(1e-300);
        rel = rel.max(c);
    }
    let mut report = String::new();
    let _ = writeln!(
        report,
        "solved n = {n}{} in {:.3} ms ({} path, {} thread(s), {} kernel, {} precision), relative residual {rel:.3e}",
        if batch {
            format!(", {k} rhs (batched)")
        } else {
            String::new()
        },
        secs * 1e3,
        if solver.is_positive_definite() {
            "SPD"
        } else {
            "indefinite"
        },
        solver.plan().threads(),
        bs_matrix::kernel::active_isa_name(),
        eng.precision.as_str()
    );
    obs.finish(
        &mut report,
        Some(ObserveCtx {
            block_size: solver.plan().block_size(),
            threads: solver.plan().threads(),
        }),
    )?;
    let mut flat = Vec::with_capacity(n * k);
    for j in 0..k {
        flat.extend_from_slice(x.col(j));
    }
    Ok((flat, report))
}

/// `factor` command: factor only (no solve), reporting structure,
/// growth, and — with [`Observe`] switches — trace/metrics output.
pub fn cmd_factor(matrix: &Path, eng: &EngineArgs, obs: &Observe) -> Result<String, CliError> {
    let t = read_matrix(matrix)?;
    obs.begin();
    let start = std::time::Instant::now();
    let solver = build_solver(&t, eng)?;
    let secs = start.elapsed().as_secs_f64();
    let mut report = String::new();
    let (pos, neg) = solver.inertia();
    let _ = writeln!(
        report,
        "factored n = {} (m = {}) in {:.3} ms: {} path, {} thread(s), {} kernel, {} precision, inertia {pos}+ / {neg}-",
        t.order(),
        t.block_size(),
        secs * 1e3,
        if solver.is_positive_definite() {
            "SPD"
        } else {
            "indefinite"
        },
        solver.plan().threads(),
        bs_matrix::kernel::active_isa_name(),
        eng.precision.as_str()
    );
    if let Factorization::Indefinite(f) = solver.factorization() {
        let _ = writeln!(
            report,
            "perturbations: {}, exchanges: {}, max reflector norm {:.3e}",
            f.perturbations.len(),
            f.exchanges,
            f.max_reflector_norm
        );
    }
    obs.finish(
        &mut report,
        Some(ObserveCtx {
            block_size: solver.plan().block_size(),
            threads: solver.plan().threads(),
        }),
    )?;
    Ok(report)
}

/// `factor --dist` command: factor on the measured sharded backend —
/// `np` real rank threads under a T3D distribution scheme — and report
/// wall time, per-rank traffic, and the deviation from the sequential
/// factor. `--metrics` additionally surfaces the process-wide comm
/// counters (`comm_bytes`, `comm_messages`, `comm_recv_*`) and the
/// `comm_wait_ns` latency histogram through the usual probe export.
pub fn cmd_factor_dist(
    matrix: &Path,
    scheme: &str,
    np: usize,
    obs: &Observe,
) -> Result<String, CliError> {
    let t = read_matrix(matrix)?;
    let scheme = parse_scheme(scheme)?;
    scheme.validate(np).map_err(CliError::Usage)?;
    if let bs_simulator::Scheme::V3 { spread } = scheme {
        if !t.block_size().is_multiple_of(spread) {
            return Err(CliError::Usage(format!(
                "v3 spread {spread} must divide the block size m = {}",
                t.block_size()
            )));
        }
    }
    obs.begin();
    let opts = bs_simulator::ShardOptions::new(scheme, np);
    let run = bs_simulator::factor_sharded(&t, &opts);
    // Cross-check against the sequential engine: the sharded factor
    // must be the same matrix (§8 tolerance), whatever the scheme.
    let seq = bs_core::factor_spd(&t, &SchurOptions::default())
        .map_err(|e| CliError::Numerical(e.to_string()))?;
    let diff = run.r.max_abs_diff(&seq.r);
    let mut report = String::new();
    let _ = writeln!(
        report,
        "factored n = {} (m = {}) on {np} rank(s), {}, VY2 representation: wall {:.3} ms",
        t.order(),
        t.block_size(),
        scheme.label(),
        run.wall_s * 1e3
    );
    let _ = writeln!(
        report,
        "max deviation from the sequential factor: {diff:.3e}"
    );
    let _ = writeln!(
        report,
        "comm volume: {} bytes across rank boundaries",
        run.comm_volume()
    );
    let _ = writeln!(report, "rank    wall ms   sent KiB   recv KiB    wait ms");
    for r in 0..np {
        let _ = writeln!(
            report,
            "{r:>4} {:>10.3} {:>10.1} {:>10.1} {:>10.3}",
            run.rank_wall_s[r] * 1e3,
            run.bytes_sent[r] as f64 / 1024.0,
            run.bytes_received[r] as f64 / 1024.0,
            run.comm_wait_s[r] * 1e3
        );
    }
    obs.finish(&mut report, None)?;
    Ok(report)
}

/// Parse a `--rep` flag value into a [`RepKind`].
fn parse_rep(s: &str) -> Result<RepKind, CliError> {
    match s.to_ascii_lowercase().as_str() {
        "u" | "accumulated" => Ok(RepKind::Accumulated),
        "vy1" => Ok(RepKind::VY1),
        "vy2" => Ok(RepKind::VY2),
        "yty" => Ok(RepKind::YTY),
        "seq" | "sequential" => Ok(RepKind::Sequential),
        other => Err(CliError::Usage(format!(
            "unknown representation {other:?} (u | vy1 | vy2 | yty | seq)"
        ))),
    }
}

/// `plan` command: show the execution plan the solver would run for a
/// matrix (or a bare shape) — chosen representation, algorithmic block
/// size, and the cost-model predictions behind the choices — without
/// factoring anything.
pub fn cmd_plan(
    shape: (usize, usize),
    rep: Option<&str>,
    eng: &EngineArgs,
    calibrate: bool,
) -> Result<String, CliError> {
    let (n, m) = shape;
    let req = PlanRequest {
        rep: rep.map(parse_rep).transpose()?,
        block_size: eng.block_size,
        threads: eng.threads,
        precision: eng.precision,
        calibrate,
        ..Default::default()
    };
    let plan = FactorPlan::for_shape(n, m, &req).map_err(|e| CliError::Numerical(e.to_string()))?;
    let auto = |is_auto: bool| if is_auto { " (auto)" } else { " (pinned)" };
    let mut out = String::new();
    let _ = writeln!(out, "plan for n = {n}, structural block size m = {m}:");
    let _ = writeln!(
        out,
        "  representation: {}{}",
        plan.rep(),
        auto(plan.rep_is_auto())
    );
    let _ = writeln!(
        out,
        "  block size m_s = {}{}, p = {} block columns",
        plan.block_size(),
        auto(plan.block_size_is_auto()),
        plan.num_blocks()
    );
    let _ = writeln!(
        out,
        "  execution: {} thread(s){} for the trailing update",
        plan.threads(),
        auto(plan.threads_is_auto())
    );
    let _ = writeln!(
        out,
        "  precision: {}{}",
        plan.precision().as_str(),
        match plan.precision() {
            Precision::F64 => "",
            Precision::F32 => " (demoted factor, no refinement)",
            Precision::Mixed => " (f32 factor + f64 iterative refinement)",
        }
    );
    let _ = writeln!(
        out,
        "  kernel: {} microkernels, {} rate model",
        plan.kernel_isa(),
        if plan.is_calibrated() {
            "measured (calibrated)"
        } else {
            "analytic"
        }
    );
    let _ = writeln!(
        out,
        "  predicted elimination flops: {:.4e} (eqs. 25-32 over {} steps)",
        plan.predicted_flops(),
        plan.num_blocks().saturating_sub(1)
    );
    let _ = writeln!(
        out,
        "  predicted broadcast volume: {} words/step (§7)",
        plan.predicted_comm_words()
    );
    let _ = writeln!(
        out,
        "  fallback: indefinite kernel, delta = {:.6e}",
        plan.indefinite_options().effective_delta()
    );
    Ok(out)
}

/// `gen` command: write a synthetic workload matrix.
pub fn cmd_gen(
    kind: &str,
    n: usize,
    m: usize,
    rho: f64,
    seed: u64,
    out: &Path,
) -> Result<String, CliError> {
    if m == 0 || n == 0 || !n.is_multiple_of(m) {
        return Err(CliError::Usage(format!("m = {m} must divide n = {n}")));
    }
    let p = n / m;
    let t = match kind {
        "kms" => {
            if m != 1 {
                return Err(CliError::Usage("kms is a scalar workload (m = 1)".into()));
            }
            workloads::kms(n, rho)
        }
        "spd" => workloads::spd_ar1_block(m, p, rho.clamp(0.0, 0.99), seed),
        "spd-scalar" => {
            if m != 1 {
                return Err(CliError::Usage("spd-scalar needs m = 1".into()));
            }
            workloads::random_spd_scalar(n, seed)
        }
        "indefinite" => {
            if m != 1 {
                return Err(CliError::Usage("indefinite needs m = 1".into()));
            }
            workloads::random_indefinite_scalar(n, seed)
        }
        "singular-minor" => {
            if m != 1 {
                return Err(CliError::Usage("singular-minor needs m = 1".into()));
            }
            workloads::singular_minor_scalar(n, seed)
        }
        other => {
            return Err(CliError::Usage(format!(
                "unknown kind {other:?} (kms | spd | spd-scalar | indefinite | singular-minor)"
            )))
        }
    };
    write_matrix(&t, out)?;
    Ok(format!(
        "wrote {kind} workload (n = {n}, m = {m}) to {}",
        out.display()
    ))
}

/// `simulate` command: one T3D data-distribution row.
pub fn cmd_simulate(n: usize, m: usize, np: usize, scheme: &str) -> Result<String, CliError> {
    use bs_simulator::analytic::{simulate, SimConfig};
    let scheme = parse_scheme(scheme)?;
    scheme.validate(np).map_err(CliError::Usage)?;
    if m == 0 || !n.is_multiple_of(m) {
        return Err(CliError::Usage(format!("m = {m} must divide n = {n}")));
    }
    let r = simulate(
        &SimConfig {
            n,
            m,
            np,
            scheme,
            rep: bs_perfmodel::Rep::VY2,
        },
        &bs_simulator::T3DModel::default(),
    );
    Ok(format!(
        "{} on {np} PEs (n = {n}, m = {m}): total {:.3} ms  [shift {:.3}, panel {:.3}, bcast {:.3}, apply {:.3}, barrier {:.3}]",
        scheme.label(),
        r.total * 1e3,
        r.shift * 1e3,
        r.panel * 1e3,
        r.broadcast * 1e3,
        r.apply * 1e3,
        r.barrier * 1e3,
    ))
}

fn parse_scheme(s: &str) -> Result<bs_simulator::Scheme, CliError> {
    if s == "v1" {
        return Ok(bs_simulator::Scheme::V1);
    }
    if let Some(b) = s.strip_prefix("v2:") {
        let b: usize = b
            .parse()
            .map_err(|_| CliError::Usage(format!("bad v2 group size in {s:?}")))?;
        return Ok(bs_simulator::Scheme::V2 { b });
    }
    if let Some(sp) = s.strip_prefix("v3:") {
        let sp: usize = sp
            .parse()
            .map_err(|_| CliError::Usage(format!("bad v3 spread in {s:?}")))?;
        return Ok(bs_simulator::Scheme::V3 { spread: sp });
    }
    Err(CliError::Usage(format!(
        "unknown scheme {s:?} (v1 | v2:<b> | v3:<spread>)"
    )))
}

/// `serve` command: run the multi-tenant front-end in the foreground
/// until a client sends the shutdown opcode (or the process is
/// signalled). Progress goes to stderr; the returned report is what
/// prints after shutdown.
pub fn cmd_serve(
    addr: Option<&str>,
    uds: Option<&Path>,
    cache: usize,
    inflight: usize,
) -> Result<String, CliError> {
    let server = bs_serve::Server::new(bs_serve::ServerConfig {
        cache_capacity: cache,
        max_inflight: inflight,
    });
    let handle = match (addr, uds) {
        (Some(_), Some(_)) => return Err(CliError::Usage("pass --addr or --uds, not both".into())),
        (None, None) => {
            return Err(CliError::Usage(
                "serve needs --addr <host:port> or --uds <path>".into(),
            ))
        }
        (Some(a), None) => server.serve_tcp(a).map_err(serve_to_cli)?,
        (None, Some(p)) => server.serve_uds(p).map_err(serve_to_cli)?,
    };
    let endpoint = handle.endpoint().clone();
    eprintln!(
        "block-schur serving on {endpoint} (cache capacity {cache}, max in-flight {inflight})"
    );
    handle.wait();
    Ok(format!("server on {endpoint} shut down\n"))
}

fn serve_to_cli(e: bs_serve::ServeError) -> CliError {
    match e {
        bs_serve::ServeError::Io(io) => CliError::Io(io),
        other => CliError::Usage(other.to_string()),
    }
}

/// Usage text for the binary.
pub const USAGE: &str = "block-schur — block Schur Toeplitz solver (ICPP'94 reproduction)

USAGE:
    block-schur info <matrix>
    block-schur solve <matrix> [--rhs <file>] [--batch] [--block-size <m_s>]
                     [--threads <t|max>] [--kernel <k>] [--precision <p>]
                     [--output <file>] [--trace <file>]
                     [--profile <file>] [--perfetto <file>] [--metrics]
    block-schur factor <matrix> [--block-size <m_s>] [--threads <t|max>]
                     [--kernel <k>] [--precision <p>] [--trace <file>]
                     [--profile <file>] [--perfetto <file>] [--metrics]
                     [--dist <v1|v2:b|v3:s> --np <ranks>]
    block-schur plan (<matrix> | --n <n> [--m <m>]) [--rep <kind>] [--block-size <m_s>]
                     [--threads <t|max>] [--kernel <k>] [--precision <p>] [--calibrate]
    block-schur gen <kind> --n <n> [--m <m>] [--rho <r>] [--seed <s>] --output <file>
    block-schur simulate --n <n> --m <m> --np <p> --scheme <v1|v2:b|v3:s>
    block-schur serve (--addr <host:port> | --uds <path>) [--cache <n>] [--inflight <n>]

EXECUTION:
    --threads <t|max>  worker threads for the trailing-update strips
                       (\"max\" = all cores). Default: BS_THREADS when
                       set, else the cost model picks per plan. Any
                       thread count produces bitwise-identical factors.
    --kernel <k>       BLAS-3 microkernel ISA: portable | native | avx2
                       | avx512 | neon. Default: BS_KERNEL when set,
                       else native runtime detection; an ISA the machine
                       cannot run falls back to portable. A fixed choice
                       is bitwise-deterministic across thread counts.
    --precision <p>    factor precision: f64 | f32 | mixed. \"mixed\"
                       factors in f32 (twice the SIMD lanes) and runs
                       §8.1 iterative refinement against the f64
                       operator back to working accuracy, falling back
                       to a full f64 refactorization when refinement
                       stalls on ill-conditioned systems. \"f32\" skips
                       refinement and keeps single-precision accuracy.
                       Default: f64.
    --batch            (solve) treat --rhs as k columns of n values and
                       solve them in one pooled dispatch (bitwise equal
                       to k sequential solves at any thread count).
    --calibrate        (plan) score block-size / thread auto-selection
                       on a one-shot measured kernel-rate table instead
                       of the analytic saturating model. BS_CALIBRATE=1
                       enables the same process-wide.

OBSERVABILITY:
    --trace <file>    write a JSON-lines trace: spans with ns timestamps,
                      per-step flop deltas and growth factors, residual
                      history, latency histograms, and counter totals
    --profile <file>  write a folded-stack profile (self time per call
                      path) — feed to flamegraph.pl / inferno / speedscope
    --perfetto <file> write a Chrome trace-event JSON timeline — open in
                      ui.perfetto.dev or chrome://tracing
    --metrics         append counter totals, the stability summary,
                      latency quantiles (p50/p90/p99/p999 per solve,
                      factor step, pool dispatch, kernel call), and the
                      roofline report (achieved vs calibrated Gflop/s
                      per phase, strip_efficiency, dispatch_overhead_ns)
                      to the report. A saturated trace ring is warned
                      about, never silently truncated.

PLAN: prints the configuration the plan/execute engine would run —
      representation and algorithmic block size (cost-model-chosen
      unless pinned with --rep / --block-size) with predicted flops.
      REPS: u | vy1 | vy2 | yty | seq

SERVE: long-lived multi-tenant front-end over a length-prefixed binary
       protocol (TCP or Unix socket). Factors are cached per operator
       fingerprint with LRU eviction and single-flight factorization;
       --cache <n> Ready factors held (default 16), --inflight <n>
       concurrent solves before load-shedding (default 64). Runs until
       a client sends the shutdown opcode.

DIST:  factor --dist runs the factorization on the measured sharded
       backend: --np real rank threads exchanging generator shards
       through channels under a T3D data distribution (v1 cyclic,
       v2:<b> block-cyclic, v3:<spread> column-split). The report has
       measured wall time, per-rank sent/received bytes and blocked
       time, and the max deviation from the sequential factor;
       --metrics adds the comm counters (comm_bytes, comm_messages,
       comm_recv_bytes, comm_recv_messages) and the comm_wait_ns
       latency histogram.

KINDS: kms | spd | spd-scalar | indefinite | singular-minor
MATRIX FILE: `m p` header then the m*m*p values of the first block row.";

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("bschur-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn matrix_round_trip() {
        let t = workloads::random_spd_block(2, 5, 42);
        let path = tmp("roundtrip.txt");
        write_matrix(&t, &path).unwrap();
        let t2 = read_matrix(&path).unwrap();
        assert_eq!(t2.block_size(), 2);
        assert_eq!(t2.num_blocks(), 5);
        assert!(t2.to_dense().max_abs_diff(&t.to_dense()) < 1e-15);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn gen_info_solve_pipeline() {
        let mat = tmp("pipeline.txt");
        let msg = cmd_gen("singular-minor", 24, 1, 0.0, 7, &mat).unwrap();
        assert!(msg.contains("singular-minor"));

        let info = cmd_info(&mat).unwrap();
        assert!(info.contains("n = 24"), "{info}");
        assert!(info.contains("spectrum:"), "{info}");
        assert!(info.contains("positive definite: false"), "{info}");
        assert!(info.contains("perturbations: 1"), "{info}");

        let (x, report) = cmd_solve(
            &mat,
            None,
            false,
            &EngineArgs::default(),
            &Observe::default(),
        )
        .unwrap();
        assert!(report.contains("indefinite"), "{report}");
        assert!(report.contains("f64 precision"), "{report}");
        // Default RHS has x* = 1.
        for v in &x {
            assert!((v - 1.0).abs() < 1e-8);
        }
        std::fs::remove_file(&mat).ok();
    }

    #[test]
    fn serve_round_trips_and_shuts_down() {
        let sock = tmp("serve.sock");
        let sock2 = sock.clone();
        let server = std::thread::spawn(move || cmd_serve(None, Some(&sock2), 4, 8).unwrap());
        for _ in 0..400 {
            if sock.exists() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        let mut client = bs_serve::Client::connect_uds(&sock).unwrap();
        let t = workloads::random_spd_scalar(16, 6);
        let b = bs_matrix::Matrix::from_fn(16, 2, |i, j| (i + 2 * j) as f64);
        let x = client.solve(&t, &b).unwrap();
        let want = bs_core::Factor::new(&t).unwrap().solve_batch(&b).unwrap();
        assert_eq!(x.as_slice(), want.as_slice());
        client.shutdown_server().unwrap();
        let report = server.join().unwrap();
        assert!(report.contains("shut down"), "{report}");
        assert!(!sock.exists(), "socket file removed after shutdown");
    }

    #[test]
    fn serve_rejects_conflicting_transports() {
        assert!(matches!(
            cmd_serve(Some("127.0.0.1:0"), Some(Path::new("/tmp/x")), 1, 1),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            cmd_serve(None, None, 1, 1),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn solve_with_explicit_rhs_and_block_size() {
        let mat = tmp("spd.txt");
        cmd_gen("spd-scalar", 32, 1, 0.0, 3, &mat).unwrap();
        let t = read_matrix(&mat).unwrap();
        let x_true: Vec<f64> = (0..32).map(|i| i as f64 - 16.0).collect();
        let b = t.matvec(&x_true);
        let rhs = tmp("rhs.txt");
        let text: String = b.iter().map(|v| format!("{v:.17e}\n")).collect();
        std::fs::write(&rhs, text).unwrap();
        let eng = EngineArgs {
            block_size: Some(4),
            ..Default::default()
        };
        let (x, report) =
            cmd_solve(&mat, Some(rhs.as_path()), false, &eng, &Observe::default()).unwrap();
        assert!(report.contains("SPD"), "{report}");
        for i in 0..32 {
            assert!((x[i] - x_true[i]).abs() < 1e-8);
        }
        std::fs::remove_file(&mat).ok();
        std::fs::remove_file(&rhs).ok();
    }

    #[test]
    fn solve_with_mixed_precision_refines_to_working_accuracy() {
        let mat = tmp("mixed.txt");
        cmd_gen("kms", 48, 1, 0.9, 0, &mat).unwrap();
        let eng = EngineArgs {
            precision: Precision::Mixed,
            ..Default::default()
        };
        let (x, report) = cmd_solve(&mat, None, false, &eng, &Observe::default()).unwrap();
        assert!(report.contains("mixed precision"), "{report}");
        // Default RHS has x* = 1; refinement lands at working accuracy.
        for v in &x {
            assert!((v - 1.0).abs() < 1e-8, "{report}");
        }
        std::fs::remove_file(&mat).ok();
    }

    #[test]
    fn solve_batch_handles_multi_column_rhs() {
        let mat = tmp("batch.txt");
        cmd_gen("spd", 32, 2, 0.6, 9, &mat).unwrap();
        let t = read_matrix(&mat).unwrap();
        let n = t.order();
        // Three RHS columns with known solutions 1, 2, 3.
        let mut text = String::new();
        for s in 1..=3 {
            for v in t.matvec(&vec![s as f64; n]) {
                text.push_str(&format!("{v:.17e}\n"));
            }
        }
        let rhs = tmp("batch-rhs.txt");
        std::fs::write(&rhs, text).unwrap();
        let (x, report) = cmd_solve(
            &mat,
            Some(rhs.as_path()),
            true,
            &EngineArgs::default(),
            &Observe::default(),
        )
        .unwrap();
        assert!(report.contains("3 rhs (batched)"), "{report}");
        assert_eq!(x.len(), 3 * n);
        for (j, chunk) in x.chunks(n).enumerate() {
            for v in chunk {
                assert!((v - (j + 1) as f64).abs() < 1e-8, "{report}");
            }
        }
        // --batch without --rhs is a usage error; a ragged file is a
        // parse error.
        assert!(matches!(
            cmd_solve(
                &mat,
                None,
                true,
                &EngineArgs::default(),
                &Observe::default()
            ),
            Err(CliError::Usage(_))
        ));
        std::fs::write(&rhs, "1.0 2.0 3.0\n").unwrap();
        assert!(matches!(
            cmd_solve(
                &mat,
                Some(rhs.as_path()),
                true,
                &EngineArgs::default(),
                &Observe::default()
            ),
            Err(CliError::Parse(_))
        ));
        std::fs::remove_file(&mat).ok();
        std::fs::remove_file(&rhs).ok();
    }

    #[test]
    fn solve_with_trace_emits_valid_jsonl() {
        let mat = tmp("traced.txt");
        cmd_gen("spd-scalar", 48, 1, 0.0, 11, &mat).unwrap();
        let trace = tmp("trace.jsonl");
        let obs = Observe {
            trace: Some(trace.clone()),
            metrics: true,
            ..Default::default()
        };
        let eng = EngineArgs {
            block_size: Some(4),
            ..Default::default()
        };
        let (_, report) = cmd_solve(&mat, None, false, &eng, &obs).unwrap();
        assert!(report.contains("metrics:"), "{report}");
        assert!(report.contains("peak growth factor:"), "{report}");
        assert!(report.contains("trace written to"), "{report}");

        let text = std::fs::read_to_string(&trace).unwrap();
        let mut saw_step_flops = false;
        let mut saw_growth = false;
        for line in text.lines() {
            let v = bs_probe::Json::parse(line).expect("every trace line is valid JSON");
            match v.get("type").and_then(|t| t.as_str()) {
                Some("span")
                    if v.get("name").and_then(|n| n.as_str()) == Some("schur_step_done") =>
                {
                    let fields = v.get("fields").unwrap();
                    saw_step_flops |= fields.get("flops").is_some();
                }
                Some("step") => {
                    saw_growth |= v.get("growth").and_then(|g| g.as_f64()).is_some();
                }
                _ => {}
            }
        }
        assert!(saw_step_flops, "trace lacks per-step flop counts:\n{text}");
        assert!(saw_growth, "trace lacks per-step growth factors:\n{text}");
        std::fs::remove_file(&mat).ok();
        std::fs::remove_file(&trace).ok();
    }

    #[test]
    fn factor_command_reports_structure() {
        let mat = tmp("factor.txt");
        cmd_gen("singular-minor", 24, 1, 0.0, 7, &mat).unwrap();
        let report = cmd_factor(&mat, &EngineArgs::default(), &Observe::default()).unwrap();
        assert!(report.contains("indefinite"), "{report}");
        assert!(report.contains("perturbations: 1"), "{report}");
        std::fs::remove_file(&mat).ok();
    }

    #[test]
    fn plan_command_reports_choices() {
        // Fully automatic: n = 256, m = 4 retiles to m_s = 8 (p = 32),
        // where the trailing applications dominate and VY2 wins.
        let out = cmd_plan((256, 4), None, &EngineArgs::default(), false).unwrap();
        assert!(out.contains("plan for n = 256"), "{out}");
        assert!(out.contains("VY form 2 (auto)"), "{out}");
        assert!(out.contains("m_s = 8 (auto), p = 32"), "{out}");
        // Thread count may come from BS_THREADS (pinned) or the cost
        // model (auto); either way the line is reported.
        assert!(out.contains("thread(s)"), "{out}");
        assert!(out.contains("precision: f64"), "{out}");
        assert!(out.contains("microkernels, analytic rate model"), "{out}");
        assert!(out.contains("predicted elimination flops:"), "{out}");
        assert!(out.contains("words/step"), "{out}");
        assert!(out.contains("fallback: indefinite kernel"), "{out}");

        // Pinned representation and block size are echoed as such.
        let eng = EngineArgs {
            block_size: Some(4),
            threads: Some(3),
            ..Default::default()
        };
        let out = cmd_plan((32, 1), Some("yty"), &eng, false).unwrap();
        assert!(out.contains("(pinned)"), "{out}");
        assert!(out.contains("m_s = 4 (pinned), p = 8"), "{out}");
        assert!(out.contains("3 thread(s) (pinned)"), "{out}");

        // A mixed-precision request is carried through and described.
        let eng = EngineArgs {
            precision: Precision::Mixed,
            ..Default::default()
        };
        let out = cmd_plan((64, 2), None, &eng, false).unwrap();
        assert!(
            out.contains("precision: mixed (f32 factor + f64 iterative refinement)"),
            "{out}"
        );

        // Calibrated planning reports the measured-rate model and still
        // produces a structurally valid plan.
        let out = cmd_plan((64, 4), None, &EngineArgs::default(), true).unwrap();
        assert!(out.contains("measured (calibrated) rate model"), "{out}");

        // --threads parsing: counts and "max", junk rejected.
        assert_eq!(parse_threads_flag("2").unwrap(), 2);
        assert!(parse_threads_flag("max").unwrap() >= 1);
        assert!(parse_threads_flag("0").is_err());
        assert!(parse_threads_flag("lots").is_err());

        // --precision parsing mirrors Precision::parse.
        assert_eq!(parse_precision_flag("f32").unwrap(), Precision::F32);
        assert_eq!(parse_precision_flag("mixed").unwrap(), Precision::Mixed);
        assert!(parse_precision_flag("f16").is_err());

        // Bad inputs surface as CLI errors, not panics.
        assert!(matches!(
            cmd_plan((32, 1), Some("bogus"), &EngineArgs::default(), false),
            Err(CliError::Usage(_))
        ));
        let eng = EngineArgs {
            block_size: Some(5),
            ..Default::default()
        };
        assert!(matches!(
            cmd_plan((32, 1), None, &eng, false),
            Err(CliError::Numerical(_))
        ));
        assert!(matches!(
            apply_kernel_flag("bogus"),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn factor_dist_runs_and_reports() {
        let mat = tmp("dist.txt");
        cmd_gen("spd", 32, 2, 0.5, 5, &mat).unwrap();
        let obs = Observe {
            metrics: true,
            ..Default::default()
        };
        let report = cmd_factor_dist(&mat, "v2:2", 2, &obs).unwrap();
        assert!(report.contains("V2(b=2)"), "{report}");
        assert!(report.contains("on 2 rank(s)"), "{report}");
        assert!(
            report.contains("max deviation from the sequential factor"),
            "{report}"
        );
        assert!(report.contains("comm volume:"), "{report}");
        // Satellite observability: counters and the wait histogram
        // surface through the standard --metrics export.
        assert!(report.contains("comm_recv_bytes"), "{report}");
        assert!(report.contains("comm wait latency"), "{report}");
        // Invalid configurations are usage errors, not panics.
        assert!(matches!(
            cmd_factor_dist(&mat, "v3:4", 4, &Observe::default()),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            cmd_factor_dist(&mat, "v9", 2, &Observe::default()),
            Err(CliError::Usage(_))
        ));
        std::fs::remove_file(&mat).ok();
    }

    #[test]
    fn simulate_command_formats() {
        let out = cmd_simulate(1024, 4, 8, "v2:4").unwrap();
        assert!(out.contains("V2(b=4)"), "{out}");
        assert!(cmd_simulate(1024, 4, 8, "v9").is_err());
        assert!(cmd_simulate(1024, 3, 8, "v1").is_err());
        assert!(cmd_simulate(1024, 4, 6, "v3:4").is_err());
    }

    #[test]
    fn parse_errors_are_reported() {
        let p = tmp("bad.txt");
        std::fs::write(&p, "2 2\n1 0 0 1\n").unwrap(); // too few values
        assert!(matches!(read_matrix(&p), Err(CliError::Parse(_))));
        std::fs::write(&p, "0 2\n").unwrap();
        assert!(matches!(read_matrix(&p), Err(CliError::Parse(_))));
        std::fs::write(&p, "1 1\nnotanumber\n").unwrap();
        assert!(matches!(read_matrix(&p), Err(CliError::Parse(_))));
        std::fs::remove_file(&p).ok();
        assert!(cmd_gen("bogus", 8, 1, 0.0, 0, &tmp("x.txt")).is_err());
    }
}
