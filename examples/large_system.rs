//! Solving a large Toeplitz system end to end with the high-level
//! [`ToeplitzSolver`] API: automatic SPD/indefinite dispatch, block
//! size tuning, and FFT-accelerated residual verification.
//!
//! Run: `cargo run --release --example large_system`

use block_schur::prelude::*;
use block_schur::toeplitz::FastToeplitzMatVec;
use std::time::Instant;

fn main() {
    let n = 4096;
    let t = workloads::random_spd_scalar(n, 99);
    let (b, x_true) = workloads::rhs_for_ones(&t);

    // Factor with a tuned algorithmic block size (§6.5) through the
    // one-stop solver API.
    let opts = SolverOptions {
        spd: SchurOptions {
            block_size: Some(8),
            exec: ExecPolicy::max_threads(),
            ..Default::default()
        },
        ..Default::default()
    };
    let start = Instant::now();
    let solver = ToeplitzSolver::with_options(&t, &opts).expect("factorization");
    let t_factor = start.elapsed();

    let start = Instant::now();
    let x = solver.solve(&b).expect("solve");
    let t_solve = start.elapsed();

    println!(
        "n = {n}: factored in {:.1} ms (m_s = 8, pooled), solved in {:.2} ms",
        t_factor.as_secs_f64() * 1e3,
        t_solve.as_secs_f64() * 1e3
    );
    println!("positive definite: {}", solver.is_positive_definite());
    let (sign, ln_det) = solver.det_sign_ln();
    println!("det: sign {sign:+.0}, ln|det| = {ln_det:.3}");

    // Verify with the O(n log n) product — the full residual costs
    // ~n log n instead of n².
    let fast = FastToeplitzMatVec::new(&t);
    let start = Instant::now();
    let r = fast.residual(&x, &b);
    let t_res = start.elapsed();
    let rn = block_schur::matrix::norms::vec_two(&r);
    let bn = block_schur::matrix::norms::vec_two(&b);
    println!(
        "relative residual ‖b − Tx‖/‖b‖ = {:.3e} (FFT check in {:.2} ms)",
        rn / bn,
        t_res.as_secs_f64() * 1e3
    );
    let err = x
        .iter()
        .zip(&x_true)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!("‖x − x*‖_inf = {err:.3e}");
    assert!(rn / bn < 1e-12 && err < 1e-7);

    // The same API transparently handles a large indefinite
    // singular-minor system via perturbation + FFT-assisted refinement.
    let ti = workloads::singular_minor_scalar(n, 5);
    let (bi, xi_true) = workloads::rhs_for_ones(&ti);
    let start = Instant::now();
    let solver_i = ToeplitzSolver::new(&ti).expect("indefinite factorization");
    let xi = solver_i.solve(&bi).expect("refined solve");
    println!(
        "\nindefinite singular-minor system (n = {n}): solved in {:.1} ms total",
        start.elapsed().as_secs_f64() * 1e3
    );
    let (pos, neg) = solver_i.inertia();
    println!("inertia: {pos}+ / {neg}-");
    let erri = xi
        .iter()
        .zip(&xi_true)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!("‖x − x*‖_inf = {erri:.3e}");
    assert!(erri < 1e-6);
    println!("ok");
}
