//! Empirical block-size tuning (§6.5): measure the factorization rate
//! at several algorithmic block sizes `m_s` and pick the fastest — the
//! "empirical characterization of the primitives' performance" the
//! paper used on the Cray Y-MP.
//!
//! Run: `cargo run --release --example blocksize_tuning`

use block_schur::perfmodel::{crossover_block_size, total_factor_flops};
use block_schur::prelude::*;
use std::time::Instant;

fn main() {
    let n = 1024;
    let t = workloads::random_spd_scalar(n, 5);
    let candidates = [1usize, 2, 4, 8, 16, 32];

    // Measure the achieved rate per block size on this machine.
    println!("measuring block Schur factorization at n = {n}:\n");
    println!(
        "{:>5} {:>12} {:>12} {:>14}",
        "m_s", "time (ms)", "Gflop/s", "flops (x 1e6)"
    );
    let mut rates = std::collections::HashMap::new();
    for &ms_ in &candidates {
        let opts = SchurOptions {
            block_size: Some(ms_),
            ..Default::default()
        };
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let start = Instant::now();
            let _ = factor_spd(&t, &opts).expect("SPD");
            best = best.min(start.elapsed().as_secs_f64());
        }
        let flops = total_factor_flops(n, ms_);
        let rate = flops / best;
        rates.insert(ms_, rate);
        println!(
            "{ms_:>5} {:>12.2} {:>12.3} {:>14.1}",
            best * 1e3,
            rate / 1e9,
            flops / 1e6
        );
    }

    // Feed the measured rates into the paper's tradeoff analysis: the
    // best m_s minimizes 4·m_s·n² / rate(m_s).
    let best = crossover_block_size(n, &candidates, |ms_| rates[&ms_]);
    println!("\nempirical best algorithmic block size for this machine at n = {n}: m_s = {best}");
    println!(
        "(the structural block size is 1 — treating the scalar Toeplitz matrix as block\n\
         Toeplitz does {}x the arithmetic but can still win on level-3 efficiency, §6.5)",
        best
    );
}
