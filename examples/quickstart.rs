//! Quickstart: factor a symmetric positive definite block Toeplitz
//! matrix with the block Schur algorithm and solve a linear system.
//!
//! Run: `cargo run --release --example quickstart`

use block_schur::prelude::*;

fn main() {
    // A 64x64 SPD block Toeplitz matrix: block size m = 4, p = 16
    // block rows, generated as the covariance sequence of a stationary
    // vector AR(1) process.
    let t = workloads::random_spd_block(4, 16, 2024);
    let n = t.order();
    println!("T: {n}x{n} symmetric positive definite block Toeplitz, m = 4, p = 16");

    // The displacement structure that makes the O(m n²) algorithm
    // possible: rank(T − ZᵀTZ) ≤ 2m even though T has rank n.
    let drank = block_schur::toeplitz::displacement::displacement_rank(&t, 1e-9);
    println!("displacement rank = {drank} (≤ 2m = 8)");

    // Factor T = RᵀR working only on the 2m × n generator.
    let f = factor_spd(&t, &SchurOptions::default()).expect("SPD factorization");
    println!(
        "factored with block size {} in {} Schur steps (rep: broadcastable in {} words)",
        f.m,
        f.p - 1,
        f.comm_words_per_step
    );

    // Verify against the dense matrix (an O(n³) check the algorithm
    // itself never needs).
    let err = f.reconstruct().max_abs_diff(&t.to_dense());
    println!("‖RᵀR − T‖_max = {err:.3e}");

    // Solve T x = b.
    let (b, x_true) = workloads::rhs_for_ones(&t);
    let x = f.solve(&b).expect("solve");
    let max_err = x
        .iter()
        .zip(&x_true)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!("solve error ‖x − x*‖_inf = {max_err:.3e}");

    assert!(err < 1e-10 && max_err < 1e-8);
    println!("ok");
}
