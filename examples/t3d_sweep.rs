//! Explore the distributed-memory design space of §7 on the simulated
//! Cray T3D: pick the best data distribution (V1 / V2 / V3) for a
//! given problem and machine size, then validate the simulator against
//! a real message-passing execution.
//!
//! Run: `cargo run --release --example t3d_sweep`

use block_schur::distmem::ZeroCost;
use block_schur::perfmodel::Rep;
use block_schur::prelude::*;
use block_schur::simulator::analytic::{simulate, SimConfig};
use block_schur::simulator::dist_exec::factor_distributed;
use block_schur::simulator::{Scheme, T3DModel};
use std::sync::Arc;

fn best_scheme(n: usize, m: usize, np: usize, model: &T3DModel) -> (Scheme, f64) {
    let mut candidates = vec![Scheme::V1];
    for b in [2usize, 4, 8, 16, 32] {
        candidates.push(Scheme::V2 { b });
    }
    for spread in [2usize, 4, 8, 16] {
        if np.is_multiple_of(spread) && m.is_multiple_of(spread) {
            candidates.push(Scheme::V3 { spread });
        }
    }
    candidates
        .into_iter()
        .map(|s| {
            let r = simulate(
                &SimConfig {
                    n,
                    m,
                    np,
                    scheme: s,
                    rep: Rep::VY2,
                },
                model,
            );
            (s, r.total)
        })
        .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .unwrap()
}

fn main() {
    let model = T3DModel::default();
    println!("best data distribution per (n, m, NP) on the simulated T3D:\n");
    println!(
        "{:>6} {:>4} {:>4}  {:<16} {:>12}",
        "n", "m", "NP", "best scheme", "time (ms)"
    );
    for (n, m, np) in [
        (4096usize, 1usize, 16usize), // Experiment 1 regime
        (4096, 8, 64),                // Experiment 2 regime
        (4096, 32, 64),               // Experiment 3 regime
        (1024, 4, 8),
        (2048, 16, 32),
    ] {
        let (scheme, secs) = best_scheme(n, m, np, &model);
        println!(
            "{n:>6} {m:>4} {np:>4}  {:<16} {:>12.3}",
            scheme.label(),
            secs * 1e3
        );
    }

    // Validate: run the real message-passing execution on a small
    // problem and compare against the sequential factorization.
    println!("\nvalidating the distributed execution against the sequential factorization...");
    let t = workloads::random_spd_block(4, 16, 99);
    let seq = factor_spd(&t, &SchurOptions::default()).expect("sequential");
    let dist = factor_distributed(&t, 4, Scheme::V1, RepKind::VY2, Arc::new(ZeroCost));
    let diff = dist.r.max_abs_diff(&seq.r);
    println!(
        "‖R_dist − R_seq‖_max = {diff:.3e} over {} ranks",
        dist.times.len()
    );
    assert!(diff < 1e-10);

    // And with the T3D clock: report the simulated factor time.
    let dist_timed = factor_distributed(
        &t,
        4,
        Scheme::V1,
        RepKind::VY2,
        Arc::new(T3DModel::default()),
    );
    println!(
        "simulated factor time on 4 T3D PEs: {:.3} ms ({} bytes on the wire)",
        dist_timed.max_time * 1e3,
        dist_timed.bytes_sent.iter().sum::<usize>()
    );
    println!("ok");
}
