//! Multichannel linear prediction — the workload class that motivates
//! block Toeplitz solvers in signal processing.
//!
//! A stationary vector process `x_k ∈ R^m` has matrix covariances
//! `Γ(d) = E[x_{k+d} x_kᵀ]`. The order-p one-step linear predictor
//! `x̂_k = Σ_j A_j x_{k−j}` solves the block normal equations
//! `T a = g`, where `T` is the SPD block Toeplitz covariance matrix
//! and `g` stacks `Γ(1) … Γ(p)`. This example builds the covariances
//! of a synthetic AR(1) channel, solves the normal equations with the
//! block Schur factorization, and measures the prediction-error
//! variance reduction.
//!
//! Run: `cargo run --release --example multichannel_prediction`

use block_schur::prelude::*;

fn main() {
    let m = 4; // channels
    let p = 32; // predictor order
                // Covariance sequence of a stationary vector AR(1) process with
                // spectral radius 0.7 — strongly correlated, so prediction pays.
    let t = workloads::spd_ar1_block(m, p, 0.7, 7);
    let n = t.order();
    println!("{m}-channel process, predictor order {p} (system size {n})");

    // Right-hand side: the next-lag covariances Γ(1) … Γ(p) stacked,
    // one column of the normal equations per predicted channel.
    // Γ(d) for this workload is block d of the *next* order's first
    // block row; build it from the order-(p+1) sequence.
    let t_ext = workloads::spd_ar1_block(m, p + 1, 0.7, 7);
    let blocks = t_ext.first_block_row();

    let f = factor_spd(&t, &SchurOptions::default()).expect("covariance is SPD");

    // Solve for each channel's predictor coefficients.
    let mut pred_error_trace = 0.0;
    let gamma0 = &blocks[0];
    for ch in 0..m {
        // g stacks column `ch` of Γ(1) ... Γ(p).
        let mut g = Vec::with_capacity(n);
        #[allow(clippy::needless_range_loop)]
        for d in 1..=p {
            for r in 0..m {
                // Γ(d)(r, ch) — note Γ(d) = E[x_{k+d} x_kᵀ] = blocksᵀ
                // relative to the first block row convention T̂_{d+1}.
                g.push(blocks[d][(ch, r)]);
            }
        }
        let a = f.solve(&g).expect("solve normal equations");
        // Prediction error variance: Γ0(ch,ch) − aᵀ g.
        let reduction: f64 = a.iter().zip(&g).map(|(x, y)| x * y).sum();
        let var0 = gamma0[(ch, ch)];
        let var_pred = var0 - reduction;
        pred_error_trace += var_pred;
        println!(
            "channel {ch}: var {var0:.4} -> prediction error {var_pred:.4}  ({:.1}% reduction)",
            100.0 * reduction / var0
        );
        assert!(var_pred > 0.0 && var_pred < var0, "predictor must help");
    }
    println!(
        "total prediction-error trace: {pred_error_trace:.4} (vs {:.4} unpredicted)",
        (0..m).map(|c| gamma0[(c, c)]).sum::<f64>()
    );
    println!("ok");
}
