//! Solving a symmetric *indefinite* Toeplitz system whose leading
//! principal minor is singular — the §8 extension: perturbed
//! factorization plus iterative refinement.
//!
//! Uses the exact 6×6 example from §8.2 of the paper and then a larger
//! random singular-minor system.
//!
//! Run: `cargo run --release --example indefinite_refinement`

use block_schur::prelude::*;

fn solve_and_report(t: &SymBlockToeplitz, label: &str) {
    let n = t.order();
    let (b, x_true) = workloads::rhs_for_ones(t);

    let opts = IndefOptions::default();
    let f = factor_indefinite(t, &opts).expect("extended Schur factorization");
    println!(
        "\n[{label}] n = {n}: {} perturbation(s) of δ = {:.2e}, {} exchange(s), inertia: {}−/{}+",
        f.perturbations.len(),
        opts.effective_delta(),
        f.exchanges,
        f.negative_inertia(),
        n - f.negative_inertia(),
    );

    // Direct (perturbed) solve: error is O(δ·cond).
    let x1 = f.solve(&b).unwrap();
    let e1 = x1
        .iter()
        .zip(&x_true)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!("direct solve error: {e1:.3e}");

    // Refinement pushes it to machine precision in ~2 steps.
    let res = solve_refined(t, &f, &b, &RefineOptions::default()).unwrap();
    let e2 = res
        .x
        .iter()
        .zip(&x_true)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!(
        "after {} refinement step(s): error {e2:.3e}, corrections: {:?}",
        res.iterations,
        res.correction_norms
            .iter()
            .map(|c| format!("{c:.1e}"))
            .collect::<Vec<_>>()
    );
    assert!(res.converged);
    assert!(e2 < 1e-10);
}

fn main() {
    // The paper's own 6×6 example (singular 2×2 leading minor).
    solve_and_report(&workloads::paper_singular_minor_example(), "paper §8.2");

    // A larger random symmetric Toeplitz with a prescribed singular
    // minor; Levinson-Durbin would break down here.
    let t = workloads::singular_minor_scalar(200, 31);
    let row: Vec<f64> = (0..200).map(|j| t.get(0, j)).collect();
    let (b, _) = workloads::rhs_for_ones(&t);
    assert!(
        block_schur::baselines::levinson_solve(&row, &b).is_err(),
        "Levinson must break down on a singular minor"
    );
    println!("\nLevinson-Durbin breaks down on the random singular-minor system, as expected");
    solve_and_report(&t, "random singular-minor, n = 200");
    println!("\nok");
}
